"""Batch-dynamic structural updates: differential and compaction tests.

The load-bearing property: a mixed batch of insertions, deletions and
weight changes applied through ``apply_batch`` must leave queried
distances identical to (a) applying the same operations one at a time
and (b) Dijkstra on the mutated graph — across the undirected,
directed and sharded backends and all three maintenance engines.
Compaction must reclaim dead slots without moving any distance, and
compacted indexes must survive snapshot round-trips and worker-pool
republish.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra, dijkstra_distance
from repro.core.config import DHLConfig
from repro.core.directed import DirectedDHLIndex
from repro.core.index import DHLIndex
from repro.core.sharded import ShardedDHLIndex
from repro.core.structural import StructuralStats
from repro.exceptions import MaintenanceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import delaunay_network, random_connected_graph
from repro.graph.graph import Graph
from repro.service.coalescer import UpdateCoalescer
from repro.service.service import DistanceService
from repro.service.workers import ShardWorkerRuntime
from tests.strategies import connected_graphs


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def structural_scripts(draw, min_n: int = 6, max_n: int = 20, max_steps: int = 4):
    """A connected graph plus a script of mixed structural batches.

    Each step holds deletions (of live edges), insertions (of absent
    edges), and weight changes, drawn against the evolving edge set so
    later steps can restore earlier deletions or reweigh earlier
    insertions.
    """
    graph = draw(connected_graphs(min_n=min_n, max_n=max_n))
    n = graph.num_vertices
    live = {(min(u, v), max(u, v)) for u, v, _ in graph.edges()}
    steps = draw(st.integers(1, max_steps))
    script = []
    for _ in range(steps):
        deletions = []
        insertions = []
        changes = []
        live_list = sorted(live)
        if live_list:
            del_count = draw(st.integers(0, min(2, len(live_list) - 1)))
            for i in draw(
                st.lists(
                    st.integers(0, len(live_list) - 1),
                    min_size=del_count,
                    max_size=del_count,
                    unique=True,
                )
            ):
                deletions.append(live_list[i])
        ins_count = draw(st.integers(0, 2))
        for _ in range(ins_count):
            u = draw(st.integers(0, n - 1))
            v = draw(st.integers(0, n - 1))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in live or key in {(a, b) for a, b, _ in insertions}:
                continue
            if key in deletions:
                continue
            insertions.append((key[0], key[1], float(draw(st.integers(1, 40)))))
        chg_count = draw(st.integers(0, 2))
        remaining = [e for e in live_list if e not in deletions]
        for _ in range(chg_count):
            if not remaining:
                break
            u, v = remaining[draw(st.integers(0, len(remaining) - 1))]
            changes.append((u, v, float(draw(st.integers(1, 40)))))
        live -= set(deletions)
        live |= {(u, v) for u, v, _ in insertions}
        script.append((insertions, deletions, changes))
    return graph, script


def assert_matches_dijkstra(index, graph, pairs):
    for s, t in pairs:
        got = index.distance(s, t)
        ref = dijkstra_distance(graph, s, t)
        if math.isinf(ref):
            assert math.isinf(got), (s, t, got, ref)
        else:
            assert got == pytest.approx(ref, abs=1e-9), (s, t, got, ref)


def sample_pairs(n, rng, count=25):
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


# ---------------------------------------------------------------------------
# undirected differential
# ---------------------------------------------------------------------------

@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=structural_scripts())
def test_batched_equals_dijkstra_undirected(data):
    graph, script = data
    index = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=4, seed=0))
    rng = random.Random(13)
    for insertions, deletions, changes in script:
        stats = index.apply_batch(
            insertions=insertions, deletions=deletions, weight_changes=changes
        )
        assert isinstance(stats, StructuralStats)
        assert_matches_dijkstra(
            index, index.graph, sample_pairs(graph.num_vertices, rng)
        )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=structural_scripts(max_steps=2))
def test_batched_equals_sequential(data):
    """One apply_batch == the same ops applied one at a time."""
    graph, script = data
    batched = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=4, seed=0))
    serial = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=4, seed=0))
    rng = random.Random(5)
    for insertions, deletions, changes in script:
        batched.apply_batch(
            insertions=insertions, deletions=deletions, weight_changes=changes
        )
        for u, v in deletions:
            serial.apply_batch(deletions=[(u, v)])
        for u, v, w in changes:
            serial.apply_batch(weight_changes=[(u, v, w)])
        for u, v, w in insertions:
            serial.apply_batch(insertions=[(u, v, w)])
        for s, t in sample_pairs(graph.num_vertices, rng):
            b, q = batched.distance(s, t), serial.distance(s, t)
            assert (math.isinf(b) and math.isinf(q)) or b == pytest.approx(
                q, abs=1e-9
            ), (s, t, b, q)


@pytest.mark.parametrize("engine", ["reference", "array", "compiled"])
def test_engines_agree_on_structural_batches(engine):
    """compiled == array == reference across a fixed mixed script."""
    graph = delaunay_network(150, seed=21)
    cfg = DHLConfig(leaf_size=6, seed=0, engine=engine)
    index = DHLIndex.build(graph.copy(), cfg)
    rng = random.Random(99)
    edges = [(u, v) for u, v, _ in graph.edges()]
    dels = rng.sample(edges, 8)
    index.apply_batch(deletions=dels[:5], weight_changes=[
        (u, v, graph.weight(u, v) * 3.0) for u, v in dels[5:]
    ])
    # restore two, insert two new links
    restores = [(u, v, 2.0) for u, v in dels[:2]]
    n = graph.num_vertices
    new_links = []
    while len(new_links) < 2:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and not index.graph.has_edge(a, b):
            new_links.append((a, b, float(rng.randint(1, 20))))
    index.apply_batch(insertions=restores + new_links)
    assert_matches_dijkstra(index, index.graph, sample_pairs(n, rng, 40))
    index.verify()


def test_insert_fast_path_fires_on_comparable_pairs(small_index):
    """Comparable non-adjacent endpoints take the slot-extension path."""
    index = small_index
    hq = index.hq
    n = index.graph.num_vertices
    pair = None
    for u in range(n):
        for v in range(u + 1, n):
            if hq.comparable(u, v) and not index.graph.has_edge(u, v):
                pair = (u, v)
                break
        if pair:
            break
    if pair is None:
        pytest.skip("no comparable non-adjacent pair on this fixture")
    before = dict(index.structural_counters)
    stats = index.apply_batch(insertions=[(pair[0], pair[1], 1.5)])
    after = index.structural_counters
    assert stats.fastpath_inserts == 1
    assert stats.new_slots >= 1
    assert after["fastpath_inserts"] == before.get("fastpath_inserts", 0) + 1
    assert after["fallback_rebuilds"] == before.get("fallback_rebuilds", 0)
    assert index.distance(*pair) <= 1.5
    rng = random.Random(3)
    assert_matches_dijkstra(index, index.graph, sample_pairs(n, rng, 20))


def test_insert_closure_limit_zero_disables_fast_path(small_road):
    cfg = DHLConfig(leaf_size=6, seed=0, insert_closure_limit=0)
    index = DHLIndex.build(small_road.copy(), cfg)
    hq = index.hq
    n = index.graph.num_vertices
    pair = next(
        (
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if hq.comparable(u, v) and not index.graph.has_edge(u, v)
        ),
        None,
    )
    if pair is None:
        pytest.skip("no comparable non-adjacent pair on this fixture")
    stats = index.apply_batch(insertions=[(pair[0], pair[1], 1.5)])
    assert stats.fastpath_inserts == 0
    assert stats.fallback_rebuilds == 1
    assert index.distance(*pair) <= 1.5


def test_already_deleted_counter(small_index):
    index = small_index
    u, v, _ = next(iter(index.graph.edges()))
    index.apply_batch(deletions=[(u, v)])
    stats = index.apply_batch(deletions=[(u, v)])
    assert stats.already_deleted == 1
    assert stats.maintenance.labels_changed == 0
    assert index.structural_counters["already_deleted_edges"] >= 1
    # deleting a never-existing edge counts too, instead of raising
    n = index.graph.num_vertices
    a, b = 0, n - 1
    if not index.graph.has_edge(a, b):
        stats = index.apply_batch(deletions=[(a, b)])
        assert stats.already_deleted == 1


def test_delete_vertex_snapshot_semantics(small_index):
    """delete_vertex must snapshot the neighbor view before mutating it."""
    index = small_index
    v = max(
        range(index.graph.num_vertices),
        key=lambda x: len(index.graph.neighbors(x)),
    )
    degree = sum(
        1 for w in index.graph.neighbors(v).values() if math.isfinite(w)
    )
    assert degree >= 2
    stats = index.delete_vertex(v)
    # every incident edge went dead in one merged batch
    assert all(
        math.isinf(w) for w in index.graph.neighbors(v).values()
    )
    assert stats.labels_changed > 0
    other = 0 if v != 0 else 1
    assert math.isinf(index.distance(other, v))


def test_bare_insert_delete_warn_deprecated(small_index):
    index = small_index
    u, v, _ = next(iter(index.graph.edges()))
    with pytest.warns(DeprecationWarning):
        index.delete_edge(u, v)
    n = index.graph.num_vertices
    pair = next(
        (
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if not index.graph.has_edge(a, b)
        ),
    )
    with pytest.warns(DeprecationWarning):
        index.insert_edge(pair[0], pair[1], 3.0)


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------

def _kill_edges(index, count, rng):
    edges = [(u, v) for u, v, w in index.graph.edges() if math.isfinite(w)]
    victims = rng.sample(edges, min(count, len(edges) - 1))
    index.apply_batch(deletions=victims)
    return victims


def test_compaction_reclaims_dead_slots(small_road):
    cfg = DHLConfig(leaf_size=6, seed=0)
    index = DHLIndex.build(small_road.copy(), cfg)
    rng = random.Random(31)
    _kill_edges(index, 60, rng)
    frac_before = index.dead_fraction
    assert frac_before > 0.0
    reference = {
        (s, t): index.distance(s, t)
        for s, t in sample_pairs(index.graph.num_vertices, rng, 60)
    }
    stats = index.compact()
    assert stats.dead_slots_reclaimed > 0
    assert stats.bytes_reclaimed > 0
    assert index.dead_fraction < frac_before
    for (s, t), ref in reference.items():
        got = index.distance(s, t)
        assert (math.isinf(got) and math.isinf(ref)) or got == pytest.approx(
            ref, abs=1e-9
        )
    index.verify()
    assert index.structural_counters["dead_slots_reclaimed"] > 0


def test_restore_after_compaction_reinserts(small_road):
    """A weight report on a compacted-away edge re-enters via insertion."""
    cfg = DHLConfig(leaf_size=6, seed=0)
    index = DHLIndex.build(small_road.copy(), cfg)
    u, v, w = next(iter(index.graph.edges()))
    index.apply_batch(deletions=[(u, v)])
    index.compact()
    assert not index.graph.has_edge(u, v)
    index.apply_batch(insertions=[(u, v, w)])
    assert index.graph.weight(u, v) == w
    assert index.distance(u, v) == pytest.approx(
        dijkstra_distance(index.graph, u, v)
    )


def test_compaction_roundtrips_v2_snapshot(tmp_path, small_road):
    index = DHLIndex.build(small_road.copy(), DHLConfig(leaf_size=6, seed=0))
    rng = random.Random(7)
    _kill_edges(index, 40, rng)
    index.compact()
    path = tmp_path / "compacted"
    index.save(path)
    loaded = DHLIndex.load(path)
    for s, t in sample_pairs(index.graph.num_vertices, rng, 40):
        a, b = index.distance(s, t), loaded.distance(s, t)
        assert (math.isinf(a) and math.isinf(b)) or a == b
    # a loaded index (tree_nodes is None) still supports structural work
    loaded.apply_batch(deletions=[next(
        (u, v) for u, v, w in loaded.graph.edges() if math.isfinite(w)
    )])
    loaded.compact()


def test_directed_compaction_roundtrips_v2_snapshot(tmp_path):
    g = random_connected_graph(60, extra_edges=50, seed=8)
    dg = DiGraph.from_undirected(g)
    index = DirectedDHLIndex.build(dg, DHLConfig(leaf_size=4, seed=0))
    rng = random.Random(11)
    arcs = [(u, v) for u, v, _ in index.digraph.arcs()]
    both = rng.sample(arcs, 6)
    dels = [(u, v) for u, v in both] + [(v, u) for u, v in both]
    index.apply_batch(deletions=dels)
    stats = index.compact()
    assert stats.dead_slots_reclaimed > 0
    path = tmp_path / "dcompacted"
    index.save(path)
    loaded = DirectedDHLIndex.load(path)
    for s, t in sample_pairs(60, rng, 40):
        a, b = index.distance(s, t), loaded.distance(s, t)
        assert (math.isinf(a) and math.isinf(b)) or a == b


# ---------------------------------------------------------------------------
# directed differential
# ---------------------------------------------------------------------------

def directed_dijkstra(dg, source):
    import heapq

    dist = [math.inf] * dg.num_vertices
    dist[source] = 0.0
    heap = [(0.0, source)]
    seen = set()
    while heap:
        d, x = heapq.heappop(heap)
        if x in seen:
            continue
        seen.add(x)
        for y, w in dg.out_neighbors(x).items():
            if math.isfinite(w) and d + w < dist[y]:
                dist[y] = d + w
                heapq.heappush(heap, (d + w, y))
    return dist


def test_directed_batch_matches_dijkstra():
    g = random_connected_graph(60, extra_edges=50, seed=8)
    dg = DiGraph.from_undirected(g)
    rng = random.Random(17)
    index = DirectedDHLIndex.build(dg, DHLConfig(leaf_size=4, seed=0))
    arcs = [(u, v) for u, v, _ in index.digraph.arcs()]
    dels = rng.sample(arcs, 5)
    changes = [
        (u, v, index.digraph.weight(u, v) + 7.0)
        for u, v in rng.sample(arcs, 3)
        if (u, v) not in dels
    ]
    inserts = []
    while len(inserts) < 2:
        a, b = rng.randrange(60), rng.randrange(60)
        if a != b and not index.digraph.has_arc(a, b):
            inserts.append((a, b, float(rng.randint(1, 15))))
    index.apply_batch(
        insertions=inserts, deletions=dels, weight_changes=changes
    )
    for s in range(0, 60, 7):
        ref = directed_dijkstra(index.digraph, s)
        for t in range(0, 60, 3):
            got = index.distance(s, t)
            assert (math.isinf(got) and math.isinf(ref[t])) or got == (
                pytest.approx(ref[t], abs=1e-9)
            ), (s, t)


# ---------------------------------------------------------------------------
# sharded differential + worker republish
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sharded_road():
    graph = delaunay_network(200, seed=23)
    index = ShardedDHLIndex.build(
        graph.copy(), k=2, config=DHLConfig(seed=0), build_workers=1
    )
    return graph, index


def test_sharded_batch_matches_dijkstra(sharded_road):
    graph, index = sharded_road
    rng = random.Random(41)
    region_of = index.region_of
    edges = [(u, v) for u, v, w in index.graph.edges() if math.isfinite(w)]
    intra = [e for e in edges if region_of[e[0]] == region_of[e[1]]]
    cut = [e for e in edges if region_of[e[0]] != region_of[e[1]]]
    dels = rng.sample(intra, 4) + ([cut[0]] if cut else [])
    inserts = []
    while len(inserts) < 2:
        a, b = rng.randrange(200), rng.randrange(200)
        if a != b and region_of[a] == region_of[b] and not index.graph.has_edge(a, b):
            inserts.append((a, b, float(rng.randint(1, 20))))
    index.apply_batch(insertions=inserts, deletions=dels)
    assert_matches_dijkstra(index, index.graph, sample_pairs(200, rng, 30))
    # cross-region insertion rebuilds boundary structures
    cross = None
    while cross is None:
        a, b = rng.randrange(200), rng.randrange(200)
        if a != b and region_of[a] != region_of[b] and not index.graph.has_edge(a, b):
            cross = (a, b, 4.0)
    index.apply_batch(insertions=[cross])
    assert_matches_dijkstra(index, index.graph, sample_pairs(200, rng, 30))
    index.verify()


def test_sharded_compaction(sharded_road):
    _, index = sharded_road
    rng = random.Random(53)
    edges = [(u, v) for u, v, w in index.graph.edges() if math.isfinite(w)]
    index.apply_batch(deletions=rng.sample(edges, 10))
    frac = index.dead_fraction
    assert frac > 0.0
    reference = {
        (s, t): index.distance(s, t) for s, t in sample_pairs(200, rng, 40)
    }
    stats = index.compact()
    assert stats.dead_slots_reclaimed > 0
    for (s, t), ref in reference.items():
        got = index.distance(s, t)
        assert (math.isinf(got) and math.isinf(ref)) or got == pytest.approx(
            ref, abs=1e-9
        )
    index.verify()


def test_sharded_compaction_roundtrips_v3_snapshot(tmp_path):
    graph = delaunay_network(160, seed=29)
    index = ShardedDHLIndex.build(
        graph.copy(), k=2, config=DHLConfig(seed=0), build_workers=1
    )
    rng = random.Random(61)
    edges = [(u, v) for u, v, w in index.graph.edges() if math.isfinite(w)]
    index.apply_batch(deletions=rng.sample(edges, 8))
    index.compact()
    path = tmp_path / "scompacted"
    index.save(path)
    loaded = ShardedDHLIndex.load(path)
    for s, t in sample_pairs(160, rng, 40):
        a, b = index.distance(s, t), loaded.distance(s, t)
        assert (math.isinf(a) and math.isinf(b)) or a == b


def test_worker_pool_republishes_after_structural_flush():
    """Label-layout-only structural work rides the full-sync republish."""
    graph = delaunay_network(160, seed=37)
    index = ShardedDHLIndex.build(
        graph.copy(), k=2, config=DHLConfig(seed=0), build_workers=1
    )
    rng = random.Random(43)
    region_of = index.region_of
    with ShardWorkerRuntime(index) as runtime:
        service = DistanceService(runtime, flush_threshold=64)
        intra = [
            (u, v)
            for u, v, w in index.graph.edges()
            if math.isfinite(w) and region_of[u] == region_of[v]
        ]
        for u, v in rng.sample(intra, 5):
            service.submit_delete(u, v)
        service.flush()
        assert_matches_dijkstra(index, index.graph, sample_pairs(160, rng, 25))
        got = service.distances(sample_pairs(160, rng, 25))
        assert np.all(np.isfinite(got) | np.isinf(got))
        # pooled compaction republishes every shard buffer
        service.compact()
        pairs = sample_pairs(160, rng, 25)
        got = service.distances(pairs)
        for (s, t), d in zip(pairs, got):
            ref = dijkstra_distance(index.graph, s, t)
            assert (math.isinf(d) and math.isinf(ref)) or d == pytest.approx(
                ref, abs=1e-9
            )


# ---------------------------------------------------------------------------
# coalescer state machine
# ---------------------------------------------------------------------------

class TestCoalescerStateMachine:
    def _graph(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        return g

    def test_insert_then_delete_cancels(self):
        c = UpdateCoalescer()
        c.add_insert(0, 3, 5.0)
        c.add_delete(0, 3)
        assert len(c) == 0
        assert c.stats().cancelled_pairs == 1

    def test_delete_then_insert_folds_to_weight(self):
        c = UpdateCoalescer()
        c.add_delete(0, 1)
        c.add_insert(0, 1, 9.0)
        batch = c.drain(self._graph())
        assert batch.deletions == []
        assert batch.insertions == []
        assert batch.increases == [(0, 1, 9.0)]

    def test_weight_on_queued_insert_folds_into_insert(self):
        c = UpdateCoalescer()
        c.add_insert(2, 3, 5.0)
        c.add(2, 3, 7.0)
        batch = c.drain(self._graph())
        assert batch.insertions == [(2, 3, 7.0)]

    def test_weight_on_missing_edge_becomes_insertion(self):
        c = UpdateCoalescer()
        c.add(0, 3, 4.0)
        batch = c.drain(self._graph())
        assert batch.insertions == [(0, 3, 4.0)]
        assert batch.is_structural

    def test_plain_weight_batch_not_structural(self):
        c = UpdateCoalescer()
        c.add(0, 1, 3.0)
        batch = c.drain(self._graph())
        assert not batch.is_structural
        assert batch.increases == [(0, 1, 3.0)]


# ---------------------------------------------------------------------------
# service integration: auto-compaction + stats
# ---------------------------------------------------------------------------

def test_service_auto_compacts_past_threshold():
    graph = delaunay_network(150, seed=47)
    cfg = DHLConfig(leaf_size=6, seed=0, compaction_threshold=0.02)
    index = DHLIndex.build(graph.copy(), cfg)
    service = DistanceService(index, flush_threshold=512)
    rng = random.Random(3)
    edges = [(u, v) for u, v, w in graph.edges() if math.isfinite(w)]
    for u, v in rng.sample(edges, 30):
        service.submit_delete(u, v)
    service.flush()
    st = service.stats()
    assert st.structural_batches == 1
    assert st.compactions >= 1
    assert st.dead_slots_reclaimed > 0
    assert st.bytes_reclaimed > 0
    assert index.dead_fraction < cfg.compaction_threshold
    assert_matches_dijkstra(index, index.graph, sample_pairs(150, rng, 30))
    service.close()


def test_service_threshold_one_disables_auto_compaction():
    graph = delaunay_network(120, seed=47)
    index = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=6, seed=0))
    assert index.config.compaction_threshold == 1.0 or (
        index.config.compaction_threshold < 1.0
    )
    service = DistanceService(
        DHLIndex.build(
            graph.copy(), DHLConfig(leaf_size=6, seed=0, compaction_threshold=1.0)
        ),
        flush_threshold=512,
    )
    rng = random.Random(5)
    edges = [(u, v) for u, v, _ in graph.edges()]
    for u, v in rng.sample(edges, 20):
        service.submit_delete(u, v)
    service.flush()
    assert service.stats().compactions == 0
    service.close()
