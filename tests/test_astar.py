"""Tests for the A* baselines (Euclidean and ALT heuristics)."""

from __future__ import annotations

import pytest

from repro.baselines.astar import ALTHeuristic, astar_distance, euclidean_heuristic
from repro.baselines.dijkstra import dijkstra
from repro.exceptions import GraphError
from repro.graph.generators import random_connected_graph


class TestEuclideanAStar:
    def test_matches_dijkstra(self, small_road):
        full = dijkstra(small_road, 0)
        for t in range(0, 300, 23):
            assert astar_distance(small_road, 0, t) == full[t]

    def test_heuristic_admissible_on_edges(self, small_road):
        """h must underestimate: check the edge-level condition."""
        for u, v, w in small_road.edges():
            h = euclidean_heuristic(small_road, v, 10_000.0)
            assert h(u) <= w + 1e-6

    def test_requires_coords(self, medium_random):
        with pytest.raises(GraphError):
            astar_distance(medium_random, 0, 5)

    def test_same_vertex(self, small_road):
        assert astar_distance(small_road, 4, 4) == 0.0


class TestALT:
    def test_matches_dijkstra_without_coords(self, medium_random):
        alt = ALTHeuristic(medium_random, k=4, seed=0)
        full = dijkstra(medium_random, 2)
        for t in range(0, 120, 13):
            d = astar_distance(
                medium_random, 2, t, heuristic=alt.heuristic(t)
            )
            assert d == full[t]

    def test_heuristic_is_lower_bound(self, medium_random):
        alt = ALTHeuristic(medium_random, k=3, seed=1)
        full = dijkstra(medium_random, 9)
        h = alt.heuristic(9)
        for v in range(medium_random.num_vertices):
            assert h(v) <= full[v] + 1e-9

    def test_landmark_count_capped(self):
        g = random_connected_graph(5, seed=0)
        alt = ALTHeuristic(g, k=10, seed=0)
        assert len(alt.landmarks) <= 5

    def test_landmarks_distinct(self, medium_random):
        alt = ALTHeuristic(medium_random, k=5, seed=2)
        assert len(set(alt.landmarks)) == len(alt.landmarks)

    def test_zero_heuristic_degenerates_to_dijkstra(self, small_road):
        full = dijkstra(small_road, 1)
        d = astar_distance(small_road, 1, 200, heuristic=lambda v: 0.0)
        assert d == full[200]
