"""Failover edge cases the happy-path suites do not reach.

Each test stages a precise race deterministically — processes are
killed *without* telling the parent, round-robin position is burned to
a known offset, epochs are skewed by hand — so the recovery path under
test is the only one that can answer:

* a replica that dies while an ``EpochDelta`` broadcast is in flight is
  noticed by the broadcast itself, and the surviving sibling still
  syncs;
* a failover retry that lands on a *stale* sibling resolves through the
  ``StaleReply`` → republish → retry path, stacking both counters in
  one request;
* losing the last replica mid-batch under ``degraded_mode="error"``
  hard-fails with the typed :class:`ShardUnavailableError`;
* the pipe transport (no replicas, no resync loop) surfaces an epoch
  skew as :class:`WorkerEpochError` directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.sharded import ShardedDHLIndex
from repro.exceptions import ShardUnavailableError, WorkerEpochError
from repro.graph.generators import delaunay_network
from repro.service.socket_runtime import SocketShardRuntime
from repro.service.workers import ShardWorkerRuntime


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def build_sharded(graph, k=2):
    return ShardedDHLIndex.build(
        graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=1
    )


@pytest.fixture(scope="module")
def edge_stack():
    graph = delaunay_network(130, seed=35, style="city", edge_factor=1.35)
    return graph, build_sharded(graph)


def shard_pairs(sharded, sid, count=5):
    vertices = [int(v) for v in sharded.shard_vertices[sid]]
    return [(vertices[i], vertices[-1 - i]) for i in range(count)]


def silent_kill(handle):
    """Kill the process without telling the parent-side handle."""
    handle.process.terminate()
    handle.process.join(10)
    assert handle.alive  # the parent must discover it on its own


def make_runtime(sharded, **kwargs):
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("supervise_interval", 1000.0)
    return SocketShardRuntime(sharded, **kwargs)


def test_failover_races_inflight_epoch_delta(edge_stack):
    """The delta broadcast is the first to touch a silently-dead
    replica: the send fails, the handle is marked dead, and the
    surviving sibling still receives the sync — later queries agree
    with the authoritative parent."""
    graph, sharded = edge_stack
    pairs = shard_pairs(sharded, 0)
    with make_runtime(sharded, replicas=2) as runtime:
        runtime.distances(pairs)  # burns the construction-time poll
        victim = runtime._groups[0][0]
        silent_kill(victim)
        u, v, w = next(
            (u, v, w)
            for u, v, w in graph.edges()
            if sharded.region_of[u] == 0 and sharded.region_of[v] == 0
        )
        before_syncs = runtime.stats.delta_syncs + runtime.stats.republishes
        runtime.apply_update([(u, v, float(max(1, round(2 * w))))])
        assert not victim.alive  # the broadcast noticed the death
        assert runtime.stats.delta_syncs + runtime.stats.republishes > before_syncs
        for _ in range(2):  # both round-robin positions post-update
            np.testing.assert_array_equal(
                runtime.distances(pairs), sharded.distances(pairs)
            )


def test_failover_retry_lands_on_stale_replica_and_resyncs(edge_stack):
    """One request that needs *both* recovery paths: the round-robin
    pick is a dead replica (failover), and the retry sibling holds a
    stale epoch (StaleReply -> republish -> retry)."""
    graph, sharded = edge_stack
    pairs = shard_pairs(sharded, 0)
    expected = sharded.distances(pairs)
    with make_runtime(sharded, replicas=2) as runtime:
        # Burn the round-robin counter to an even position so the next
        # pick for shard 0 is replica slot 0 — the one we kill.
        runtime.distances(pairs)
        runtime.distances(pairs)
        victim = runtime._groups[0][0]
        silent_kill(victim)
        runtime._epochs[0] += 1  # every replica of shard 0 is now behind
        before_f = runtime.stats.failovers
        before_r = runtime.stats.resyncs
        np.testing.assert_array_equal(runtime.distances(pairs), expected)
        assert runtime.stats.failovers > before_f
        assert runtime.stats.resyncs > before_r


def test_mid_batch_last_replica_loss_hard_errors_in_error_mode(edge_stack):
    _, sharded = edge_stack
    pairs = shard_pairs(sharded, 0)
    with make_runtime(sharded, replicas=1, degraded_mode="error") as runtime:
        runtime.distances(pairs)  # burns the construction-time poll
        for sid in range(sharded.k):
            silent_kill(runtime._groups[sid][0])
        before = runtime.stats.failovers
        with pytest.raises(ShardUnavailableError, match="breaker open"):
            runtime.distances(pairs)
        # The loss was discovered mid-batch: a real request failed first,
        # then the exhausted pick tripped the breaker.
        assert runtime.stats.failovers > before
        assert runtime.stats.breaker_opens >= 1


def test_pipe_transport_epoch_skew_is_worker_epoch_error(edge_stack):
    """The shared-memory pipe transport has no replica to fail over to
    and no resync loop: a stale worker is a hard, typed error."""
    _, sharded = edge_stack
    pairs = shard_pairs(sharded, 0)
    with ShardWorkerRuntime(sharded) as runtime:
        np.testing.assert_array_equal(
            runtime.distances(pairs), sharded.distances(pairs)
        )
        runtime._epochs[0] += 1  # fabricate a broadcast the worker missed
        with pytest.raises(WorkerEpochError, match="missed epoch broadcast"):
            runtime.distances(pairs)
