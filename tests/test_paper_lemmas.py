"""Direct tests of the paper's lemmas and stated properties.

Each test here corresponds to a numbered claim in the paper, checked
computationally on concrete graphs:

* Lemma 4.8 — any total order extending ⪯_H yields the same valley-path
  (shortcut) structure and weights;
* Definition 4.6 — every shortcut corresponds to at least one valley
  path, and its weight is the shortest one;
* Lemma 6.3 / Corollary 6.5 — label entries equal both the shortest
  shortcut-chain length and the desc-subgraph distance in G;
* Theorem 6.8's premise — affected label entries stay bounded by the
  queue-driven search (sanity-level check on counters).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra_subgraph
from repro.graph.generators import delaunay_network
from repro.hierarchy.contraction import contract_in_order
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.maintenance import apply_increase
from repro.partition.recursive import recursive_bisection
from tests.strategies import connected_graphs


def build_hq(graph, leaf_size=3, seed=0):
    tree = recursive_bisection(graph, leaf_size=leaf_size, seed=seed)
    return QueryHierarchy.from_partition_tree(tree, graph.num_vertices)


def shortcut_map(sc) -> dict[tuple[int, int], float]:
    out = {}
    for v in range(len(sc.up)):
        for u, w in sc.wup[v].items():
            out[(min(v, u), max(v, u))] = w
    return out


class TestLemma48:
    """The update hierarchy is invariant across total-order extensions."""

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(min_n=3, max_n=18))
    def test_extension_invariance_random(self, graph):
        hq = build_hq(graph)
        tau = hq.tau
        n = graph.num_vertices
        # Two different extensions of the partial order: ties (equal tau,
        # incomparable vertices) broken in opposite id directions.
        order_a = sorted(range(n), key=lambda v: (-tau[v], v))
        order_b = sorted(range(n), key=lambda v: (-tau[v], -v))
        sc_a = contract_in_order(graph, order_a)
        sc_b = contract_in_order(graph, order_b)
        assert shortcut_map(sc_a) == shortcut_map(sc_b)

    def test_extension_invariance_road(self, small_road):
        hq = build_hq(small_road, leaf_size=8)
        tau = hq.tau
        n = small_road.num_vertices
        rng = np.random.default_rng(3)
        shuffle = rng.permutation(n)
        order_a = sorted(range(n), key=lambda v: (-tau[v], v))
        order_c = sorted(range(n), key=lambda v: (-tau[v], int(shuffle[v])))
        assert shortcut_map(contract_in_order(small_road, order_a)) == (
            shortcut_map(contract_in_order(small_road, order_c))
        )


class TestDefinition46:
    """Shortcuts are exactly the valley-path closure with min weights."""

    def test_every_shortcut_has_a_valley_path(self, small_road):
        hq = build_hq(small_road, leaf_size=8)
        hu = UpdateHierarchy.build(small_road, hq)
        tau = hu.tau
        for v in range(0, small_road.num_vertices, 17):
            for w in hu.up[v]:
                # valley path = path whose intermediates are strict
                # descendants of v (checked via restricted Dijkstra)
                d = dijkstra_subgraph(
                    small_road, v, w,
                    lambda x, w=w, v=v: x == w or tau[x] > tau[v],
                )
                assert d == hu.weight(v, w)

    def test_no_shortcut_between_unconnected_by_valley(self):
        """A pair with no valley path must have no shortcut at all."""
        g = delaunay_network(150, seed=2)
        hq = build_hq(g, leaf_size=6)
        hu = UpdateHierarchy.build(g, hq)
        tau = hu.tau
        shortcut_pairs = set(shortcut_map(hu))
        rng = np.random.default_rng(0)
        checked = 0
        for _ in range(300):
            v = int(rng.integers(0, 150))
            w = int(rng.integers(0, 150))
            if v == w or (min(v, w), max(v, w)) in shortcut_pairs:
                continue
            if not hq.comparable(v, w):
                continue
            if tau[v] < tau[w]:
                v, w = w, v
            d = dijkstra_subgraph(
                g, v, w, lambda x, w=w, v=v: x == w or tau[x] > tau[v]
            )
            assert math.isinf(d), (v, w)
            checked += 1
        assert checked > 0


class TestLemma63AndCorollary65:
    """Chains == interval subgraph distances == desc-subgraph G distances."""

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(min_n=3, max_n=16))
    def test_chain_equals_desc_subgraph_distance(self, graph):
        hq = build_hq(graph)
        hu = UpdateHierarchy.build(graph, hq)
        labels = build_labelling(hu)
        for v in range(graph.num_vertices):
            chain = hq.ancestors(v)
            for i, a in enumerate(chain):
                in_g = dijkstra_subgraph(
                    graph, v, a, lambda x, a=a: hq.precedes(a, x)
                )
                assert labels.view(v)[i] == in_g


class TestComplexityCounters:
    """Theorem 6.7/6.8 sanity: work scales with the affected set, not n."""

    def test_local_update_touches_few_entries(self):
        g = delaunay_network(1_000, seed=4)
        hq = build_hq(g, leaf_size=8)
        hu = UpdateHierarchy.build(g, hq)
        labels = build_labelling(hu)
        # a peripheral low-rank edge: its interval subgraphs are small
        tau = hu.tau
        deepest = int(np.argmax(tau))
        u = deepest
        v, w = next(iter(g.neighbors(u).items()))
        stats = apply_increase(hu, labels, [(u, v, 2 * w)])
        assert stats.entries_processed <= labels.num_entries * 0.2
        assert stats.labels_changed <= stats.entries_processed
