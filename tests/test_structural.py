"""Tests for structural updates (Section 8): delete/restore/insert."""

from __future__ import annotations

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import MaintenanceError


@pytest.fixture
def index(small_road):
    return DHLIndex.build(small_road.copy(), DHLConfig(leaf_size=6, seed=0))


class TestEdgeDeletion:
    def test_delete_edge_reroutes(self, index):
        u, v, w = min(index.graph.edges(), key=lambda e: e[2])
        index.delete_edge(u, v)
        assert math.isinf(index.graph.weight(u, v))
        expected = dijkstra_distance(index.graph, u, v)
        assert index.distance(u, v) == expected

    def test_delete_is_idempotent(self, index):
        u, v, _ = next(iter(index.graph.edges()))
        index.delete_edge(u, v)
        stats = index.delete_edge(u, v)
        assert stats.labels_changed == 0

    def test_restore_edge(self, index):
        u, v, w = next(iter(index.graph.edges()))
        original = index.labels.copy()
        index.delete_edge(u, v)
        index.restore_edge(u, v, w)
        assert index.labels.equals(original)

    def test_restore_validates_weight(self, index):
        u, v, w = next(iter(index.graph.edges()))
        with pytest.raises(MaintenanceError):
            index.restore_edge(u, v, math.inf)
        index.delete_edge(u, v)
        with pytest.raises(MaintenanceError):
            index.restore_edge(u, v, math.inf)


class TestVertexDeletion:
    def test_delete_vertex_disconnects(self, index):
        v = 42
        index.delete_vertex(v)
        for u in index.graph.neighbors(v):
            assert math.isinf(index.graph.weight(u, v))
        # v unreachable from elsewhere
        other = 0 if v != 0 else 1
        assert math.isinf(index.distance(other, v))

    def test_delete_vertex_rest_of_graph_correct(self, index):
        index.delete_vertex(13)
        s = 7
        expected = dijkstra_distance(index.graph, s, 200)
        assert index.distance(s, 200) == expected
        rebuilt = index.rebuild()
        assert index.labels.equals(rebuilt.labels)

    def test_delete_isolated_vertex_noop(self, index):
        index.delete_vertex(99)
        stats = index.delete_vertex(99)
        assert stats.labels_changed == 0


class TestEdgeInsertion:
    def test_insert_existing_edge_rejected(self, index):
        u, v, _ = next(iter(index.graph.edges()))
        with pytest.raises(MaintenanceError):
            index.insert_edge(u, v, 1.0)

    def test_insert_bad_weight_rejected(self, index):
        with pytest.raises(MaintenanceError):
            index.insert_edge(0, 299, math.inf)

    def test_insert_edge_correct_distances(self, index):
        # a shortcut edge between two far-apart vertices: the repartition
        # may reshape H_Q, so correctness is checked against Dijkstra.
        s, t = 0, 299
        if index.graph.has_edge(s, t):
            pytest.skip("random fixture happens to contain the edge")
        new_index = index.insert_edge(s, t, 1.0)
        assert new_index.distance(s, t) == 1.0
        for a, b in [(5, 250), (10, 290), (0, 150), (299, 40)]:
            assert new_index.distance(a, b) == dijkstra_distance(
                new_index.graph, a, b
            )
        new_index.verify()

    def test_insert_preserves_other_subtrees(self, index):
        """Inserting inside one region must keep queries exact everywhere."""
        # pick two vertices owned by the same (deep) tree node's subtree
        hq = index.hq
        leaf_nodes = [
            nid
            for nid in range(hq.num_nodes)
            if hq.node_depth[nid] >= 2 and len(hq.node_members[nid]) >= 2
        ]
        if not leaf_nodes:
            pytest.skip("partition tree too shallow on this fixture")
        nid = leaf_nodes[0]
        a, b = hq.node_members[nid][:2]
        if index.graph.has_edge(a, b):
            pytest.skip("edge already present")
        new_index = index.insert_edge(a, b, 2.0)
        assert new_index.distance(a, b) <= 2.0
        for s, t in [(a, b), (0, 200), (3, 299)]:
            assert new_index.distance(s, t) == dijkstra_distance(
                new_index.graph, s, t
            )
        new_index.verify()
