"""The vectorised batch query kernel must be bit-identical to the scalar path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.graph.graph import Graph
from repro.utils.rng import make_rng, sample_pairs
from tests.strategies import connected_graphs


def scalar_distances(index, pairs):
    distance = index.engine.distance
    return np.array([distance(s, t) for s, t in pairs])


class TestBatchKernel:
    def test_ten_thousand_pairs_match_per_pair(self, small_index):
        n = small_index.graph.num_vertices
        rng = make_rng(7)
        pairs = sample_pairs(n, 10_000, rng, distinct=False)
        pairs += [(v, v) for v in range(0, n, 17)]
        batch = small_index.distances(pairs)
        assert np.array_equal(batch, scalar_distances(small_index, pairs))

    def test_matches_dijkstra_rows(self, small_index):
        n = small_index.graph.num_vertices
        for s in (0, 13, n - 1):
            ref = dijkstra(small_index.graph, s)
            got = small_index.distances([(s, t) for t in range(n)])
            assert np.array_equal(got, ref)

    def test_common_ancestor_counts_vectorised(self, small_index):
        hq = small_index.hq
        engine = small_index.engine
        n = small_index.graph.num_vertices
        rng = make_rng(3)
        pairs = np.asarray(sample_pairs(n, 500, rng, distinct=False))
        counts = engine.common_ancestor_counts(pairs[:, 0], pairs[:, 1])
        for (s, t), k in zip(pairs.tolist(), counts.tolist()):
            assert k == hq.common_ancestor_count(s, t)

    def test_hubs_match_scalar(self, small_index):
        engine = small_index.engine
        n = small_index.graph.num_vertices
        rng = make_rng(5)
        pairs = sample_pairs(n, 300, rng, distinct=False) + [(4, 4)]
        dists, hubs = engine.distances_with_hubs(pairs)
        for (s, t), d, hub in zip(pairs, dists.tolist(), hubs.tolist()):
            ds, hs = engine.distance_with_hub(s, t)
            assert d == ds
            assert hub == hs

    def test_disconnected_pairs_are_inf(self):
        g = Graph(6)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 3.0)
        g.add_edge(3, 4, 1.0)
        g.add_edge(4, 5, 1.0)
        index = DHLIndex.build(g, DHLConfig(leaf_size=2, seed=0))
        pairs = [(0, 3), (2, 5), (0, 2), (3, 5)]
        out = index.distances(pairs)
        assert np.array_equal(out, scalar_distances(index, pairs))
        assert np.isinf(out[0]) and np.isinf(out[1])
        assert np.isfinite(out[2]) and np.isfinite(out[3])

    def test_empty_batch(self, small_index):
        assert small_index.distances([]).shape == (0,)
        d, h = small_index.engine.distances_with_hubs([])
        assert d.shape == (0,) and h.shape == (0,)

    def test_scalar_fallback_matches(self, small_index, monkeypatch):
        engine = small_index.engine
        n = small_index.graph.num_vertices
        pairs = sample_pairs(n, 400, make_rng(11), distinct=False)
        expected = engine.distances(pairs)
        monkeypatch.setattr(
            type(engine), "supports_batch_kernel", lambda self: False
        )
        assert np.array_equal(engine.distances(pairs), expected)
        d, h = engine.distances_with_hubs(pairs)
        assert np.array_equal(d, expected)


class TestKernelAfterMaintenance:
    def test_kernel_reads_fresh_labels_after_updates(self, small_index):
        n = small_index.graph.num_vertices
        pairs = sample_pairs(n, 2_000, make_rng(2), distinct=False)
        before = small_index.distances(pairs)
        edges = list(small_index.graph.edges())[:30]
        stats = small_index.increase([(u, v, 2 * w) for u, v, w in edges])
        assert stats.affected_labels  # maintenance touched the flat store
        after = small_index.distances(pairs)
        assert np.array_equal(after, scalar_distances(small_index, pairs))
        small_index.decrease([(u, v, w) for u, v, w in edges])
        assert np.array_equal(small_index.distances(pairs), before)

    def test_epoch_counts_applied_batches(self, small_index):
        assert small_index.epoch == 0
        (u, v, w) = next(iter(small_index.graph.edges()))
        small_index.increase([(u, v, w + 5)])
        assert small_index.epoch == 1
        small_index.update([(u, v, w)])  # one decrease batch
        assert small_index.epoch == 2
        small_index.update([(u, v, w)])  # no-op: nothing applied
        assert small_index.epoch == 2

    def test_parallel_updates_visible_to_kernel(self, small_index):
        n = small_index.graph.num_vertices
        pairs = sample_pairs(n, 1_000, make_rng(4), distinct=False)
        small_index.distances(pairs)
        edges = list(small_index.graph.edges())[:20]
        small_index.increase([(u, v, 3 * w) for u, v, w in edges], workers=2)
        assert np.array_equal(
            small_index.distances(pairs), scalar_distances(small_index, pairs)
        )

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(graph=connected_graphs(min_n=4, max_n=20))
    def test_random_graphs_batch_equals_scalar(self, graph):
        index = DHLIndex.build(graph, DHLConfig(leaf_size=3, seed=0))
        n = graph.num_vertices
        pairs = [(s, t) for s in range(n) for t in range(n)]
        batch = index.distances(pairs)
        assert np.array_equal(batch, scalar_distances(index, pairs))


def test_update_coalesced_merges_and_matches_sequential(small_index):
    edges = list(small_index.graph.edges())[:8]
    (u0, v0, w0) = edges[0]
    stream = [(u, v, 2 * w) for u, v, w in edges]
    stream += [(u0, v0, 7 * w0), (u0, v0, w0)]  # raise twice, then restore
    stats = small_index.update_coalesced(stream)
    assert small_index.graph.weight(u0, v0) == w0  # last write won
    for u, v, w in edges[1:]:
        assert small_index.graph.weight(u, v) == 2 * w
    ref = dijkstra(small_index.graph, 3)
    assert np.array_equal(
        small_index.distances([(3, t) for t in range(len(ref))]), ref
    )
    assert stats.shortcuts_changed >= 0  # merged batch applied in one pass


@pytest.mark.parametrize("workers", [None, 2])
def test_distances_from_and_k_nearest_still_consistent(small_index, workers):
    edges = list(small_index.graph.edges())[:10]
    small_index.increase([(u, v, 2 * w) for u, v, w in edges], workers=workers)
    targets = list(range(0, 200, 7))
    out = small_index.distances_from(5, targets)
    assert np.array_equal(
        out, np.array([small_index.distance(5, t) for t in targets])
    )
    nearest = small_index.k_nearest(5, targets, 4)
    assert len(nearest) == 4
    assert nearest == sorted(nearest, key=lambda item: item[1])[:4]
