"""Compiled-engine seam: config validation, fallback, warmup, query parity.

The differential maintenance coverage lives in
``tests/test_maintenance_kernels.py``; this module covers the plumbing
around the compiled package — the ``DHLConfig(engine=...)`` contract,
the one-time downgrade warning, warmup idempotence, the no-numba
import-blocked fallback, and the fused query gather against the numpy
batch kernel.
"""

from __future__ import annotations

import builtins
import warnings

import numpy as np
import pytest

import repro.labelling.compiled as compiled
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import IndexBuildError
from repro.graph.graph import Graph
from repro.labelling.compiled import kernels
from repro.utils.rng import make_rng, sample_pairs


@pytest.fixture
def reset_compiled_state(monkeypatch):
    """Give each test a pristine probe/warmup/warning state."""
    monkeypatch.setattr(compiled, "_warmed", False)
    monkeypatch.setattr(compiled, "_warmup_runs", 0)
    monkeypatch.setattr(compiled, "_failed", False)
    monkeypatch.setattr(compiled, "_warned_fallback", False)


@pytest.fixture
def forced_compiled(monkeypatch):
    """Resolve ``"compiled"`` to the compiled drivers even without numba.

    The kernels degrade to pure Python when numba is missing, so forcing
    the probe exercises the whole compiled dispatch path on every
    environment.
    """
    monkeypatch.setattr(compiled, "available", lambda: True)


def two_component_graph() -> Graph:
    g = Graph(6)
    g.add_edge(0, 1, 2.0)
    g.add_edge(1, 2, 3.0)
    g.add_edge(3, 4, 1.0)
    g.add_edge(4, 5, 1.0)
    return g


class TestConfigEngine:
    def test_accepts_compiled(self):
        assert DHLConfig(engine="compiled").engine == "compiled"

    @pytest.mark.parametrize("bad", ["numba", "jit", "", "ARRAY"])
    def test_rejects_unknown_engines(self, bad):
        with pytest.raises(IndexBuildError, match="engine must be one of"):
            DHLConfig(engine=bad)

    def test_non_compiled_resolution_is_identity(self):
        assert DHLConfig(engine="array").resolve_engine() == "array"
        assert DHLConfig(engine="reference").resolve_engine() == "reference"

    def test_forced_compiled_resolves_to_compiled(
        self, reset_compiled_state, forced_compiled
    ):
        assert DHLConfig(engine="compiled").resolve_engine() == "compiled"


class TestFallback:
    def test_downgrade_warns_exactly_once(
        self, reset_compiled_state, monkeypatch
    ):
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", False)
        config = DHLConfig(engine="compiled")
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            assert config.resolve_engine() == "array"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.resolve_engine() == "array"
            assert DHLConfig(engine="compiled").resolve_engine() == "array"

    def test_compilation_failure_reason(
        self, reset_compiled_state, monkeypatch
    ):
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(compiled, "_failed", True)
        with pytest.warns(RuntimeWarning, match="kernel compilation failed"):
            assert DHLConfig(engine="compiled").resolve_engine() == "array"

    def test_index_builds_and_updates_without_numba(
        self, reset_compiled_state, monkeypatch
    ):
        # Block the numba import entirely: the build must downgrade to
        # the array engine and still answer exact distances.
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", False)
        real_import = builtins.__import__

        def blocking_import(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ModuleNotFoundError("No module named 'numba'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", blocking_import)
        g = Graph(5)
        for i in range(4):
            g.add_edge(i, i + 1, float(i + 1))
        with pytest.warns(RuntimeWarning, match="falling back"):
            idx = DHLIndex.build(
                g, DHLConfig(leaf_size=2, seed=0, engine="compiled")
            )
        assert idx.engine.engine == "array"
        assert idx.distance(0, 4) == 10.0
        idx.update([(0, 1, 0.5)])
        assert idx.distance(0, 4) == 9.5
        idx.update([(0, 1, 4.0)])
        assert idx.distance(0, 4) == 13.0


class TestWarmup:
    def test_second_call_is_noop(self, reset_compiled_state):
        compiled.warmup_kernels()
        assert compiled._warmup_runs == 1
        compiled.warmup_kernels()
        assert compiled._warmup_runs == 1

    def test_build_labelling_warms_up(self, reset_compiled_state):
        g = Graph(4)
        for i in range(3):
            g.add_edge(i, i + 1, 1.0)
        DHLIndex.build(g, DHLConfig(leaf_size=2, seed=0))
        assert compiled._warmup_runs == 1

    def test_failed_warmup_disables_engine(
        self, reset_compiled_state, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("compilation exploded")

        monkeypatch.setattr(compiled, "_exercise_kernels", boom)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert compiled.warmup_kernels() is False
        assert compiled.available() is False


class TestCompiledQueryGather:
    def test_matches_array_kernel(self, small_road, forced_compiled):
        idx_a = DHLIndex.build(
            small_road.copy(), DHLConfig(leaf_size=6, seed=0, engine="array")
        )
        idx_c = DHLIndex.build(
            small_road.copy(),
            DHLConfig(leaf_size=6, seed=0, engine="compiled"),
        )
        assert idx_c.engine.engine == "compiled"
        n = small_road.num_vertices
        pairs = sample_pairs(n, 2000, make_rng(9), distinct=False)
        pairs += [(v, v) for v in range(0, n, 13)]
        d_a, h_a = idx_a.engine.distances_with_hubs(pairs)
        d_c, h_c = idx_c.engine.distances_with_hubs(pairs)
        np.testing.assert_array_equal(d_c, d_a)
        np.testing.assert_array_equal(h_c, h_a)
        np.testing.assert_array_equal(idx_c.distances(pairs), d_a)

    def test_self_and_disconnected_pairs(self, forced_compiled):
        idx = DHLIndex.build(
            two_component_graph(),
            DHLConfig(leaf_size=2, seed=0, engine="compiled"),
        )
        pairs = [(0, 3), (2, 5), (0, 2), (3, 5), (2, 2)]
        out, hubs = idx.engine.distances_with_hubs(pairs)
        assert np.isinf(out[0]) and np.isinf(out[1])
        assert hubs[0] == -1 and hubs[1] == -1
        assert out[2] == 5.0 and out[3] == 2.0
        assert out[4] == 0.0 and hubs[4] == -1
