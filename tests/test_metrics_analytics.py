"""Tests for network metrics and query search-space analytics."""

from __future__ import annotations

import math

import pytest

from repro.baselines.h2h import H2HIndex
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.experiments.analytics import query_search_space, search_space_by_query_set
from repro.experiments.workloads import distance_stratified_queries
from repro.graph.graph import Graph
from repro.graph.metrics import approximate_diameter, network_metrics


class TestNetworkMetrics:
    def test_path_graph_exact(self, path_graph):
        metrics = network_metrics(path_graph)
        assert metrics.num_vertices == 5
        assert metrics.num_edges == 4
        assert metrics.hop_diameter_lb == 4
        assert metrics.weighted_diameter_lb == 10.0
        assert metrics.max_degree == 2
        assert metrics.degree_histogram == {1: 2, 2: 3}

    def test_road_network_sparsity(self, small_road):
        metrics = network_metrics(small_road)
        assert 1.0 <= metrics.edge_vertex_ratio <= 1.6
        assert metrics.mean_degree == pytest.approx(
            2 * metrics.edge_vertex_ratio
        )
        assert metrics.hop_diameter_lb >= 10  # 300-vertex planar network

    def test_ignores_infinite_weights_in_mean(self):
        g = Graph(3)
        g.add_edge(0, 1, 4.0)
        g.add_edge(1, 2, 6.0)
        g.set_weight(1, 2, math.inf)
        metrics = network_metrics(g)
        assert metrics.mean_edge_weight == 4.0

    def test_as_dict_round_trip(self, small_road):
        d = network_metrics(small_road).as_dict()
        assert d["num_vertices"] == 300
        assert isinstance(d["degree_histogram"], dict)

    def test_approximate_diameter_empty(self):
        assert approximate_diameter(Graph(0)) == (0, 0.0)


class TestSearchSpaceAnalytics:
    @pytest.fixture(scope="class")
    def built(self):
        from repro.graph.generators import delaunay_network

        g = delaunay_network(400, seed=5)
        dhl = DHLIndex.build(g.copy(), DHLConfig(seed=0))
        h2h = H2HIndex.build(g.copy())
        return g, dhl, h2h

    def test_query_search_space_positive(self, built):
        _, dhl, h2h = built
        pairs = [(0, 399), (5, 200), (17, 350)]
        out = query_search_space(dhl, h2h, pairs)
        assert out["DHL_entries"] > 0
        assert out["IncH2H_entries"] > 0

    def test_matches_engine_accounting(self, built):
        _, dhl, _ = built
        pairs = [(0, 399)]
        out = query_search_space(dhl, None, pairs)
        assert out["DHL_entries"] == dhl.engine.search_space_size(0, 399)
        assert "IncH2H_entries" not in out

    def test_long_range_scans_fewer_dhl_entries(self, built):
        """The Figure 6 explanation: distant pairs share few ancestors."""
        g, dhl, h2h = built
        sets = distance_stratified_queries(
            dhl.distance, g.num_vertices, per_set=40, seed=1
        )
        report = search_space_by_query_set(dhl, h2h, sets)
        filled = [r for r in report["raw"] if r]
        assert len(filled) >= 3
        first = next(r for r in report["raw"] if r)
        last = next(r for r in reversed(report["raw"]) if r)
        assert last["DHL_entries"] <= first["DHL_entries"]
        assert "Q1" in report["text"]

    def test_empty_bucket_rendered(self, built):
        _, dhl, h2h = built
        report = search_space_by_query_set(dhl, h2h, [[], [(0, 1)]])
        assert report["rows"][0][2] == "-"
