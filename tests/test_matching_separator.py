"""Tests for Hopcroft-Karp matching and Koenig vertex separators."""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.partition.matching import hopcroft_karp
from repro.partition.separator import koenig_cover, minimum_vertex_separator


def brute_force_max_matching(left: int, right: int, adj: list[list[int]]) -> int:
    """Exponential reference for tiny instances."""
    edges = [(l, r) for l in range(left) for r in adj[l]]
    best = 0
    for size in range(min(left, right), 0, -1):
        for combo in itertools.combinations(edges, size):
            ls = {l for l, _ in combo}
            rs = {r for _, r in combo}
            if len(ls) == size and len(rs) == size:
                return size
    return best


class TestHopcroftKarp:
    def test_perfect_matching(self):
        size, ml, mr = hopcroft_karp(2, 2, [[0, 1], [0]])
        assert size == 2
        assert sorted(ml) == [0, 1]

    def test_empty_graph(self):
        size, ml, mr = hopcroft_karp(3, 3, [[], [], []])
        assert size == 0 and ml == [-1] * 3

    def test_star(self):
        size, _, _ = hopcroft_karp(3, 1, [[0], [0], [0]])
        assert size == 1

    def test_matching_is_consistent(self):
        size, ml, mr = hopcroft_karp(4, 4, [[0, 1], [1, 2], [2, 3], [3]])
        assert size == 4
        for l, r in enumerate(ml):
            assert mr[r] == l

    @settings(deadline=None)  # the exponential oracle can be slow under load
    @given(st.integers(1, 6), st.integers(1, 6), st.data())
    def test_matches_brute_force(self, left, right, data):
        adj = [
            sorted(
                data.draw(
                    st.sets(st.integers(0, right - 1), max_size=right),
                    label=f"adj[{l}]",
                )
            )
            for l in range(left)
        ]
        size, ml, mr = hopcroft_karp(left, right, adj)
        assert size == brute_force_max_matching(left, right, adj)
        matched = [(l, r) for l, r in enumerate(ml) if r != -1]
        assert len(matched) == size
        for l, r in matched:
            assert r in adj[l]


class TestKoenigCover:
    @settings(deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6), st.data())
    def test_cover_is_minimum_and_valid(self, left, right, data):
        adj = [
            sorted(
                data.draw(
                    st.sets(st.integers(0, right - 1), max_size=right),
                    label=f"adj[{l}]",
                )
            )
            for l in range(left)
        ]
        size, _, _ = hopcroft_karp(left, right, adj)
        cover_left, cover_right = koenig_cover(left, right, adj)
        # Koenig: |cover| == max matching
        assert len(cover_left) + len(cover_right) == size
        covered_left = set(cover_left)
        covered_right = set(cover_right)
        for l in range(left):
            for r in adj[l]:
                assert l in covered_left or r in covered_right


class TestMinimumVertexSeparator:
    def test_empty_cut(self):
        assert minimum_vertex_separator([]) == set()

    def test_single_edge(self):
        sep = minimum_vertex_separator([(3, 9)])
        assert len(sep) == 1 and sep <= {3, 9}

    def test_star_cut_picks_center(self):
        # vertex 5 on side A touches three cut edges: cover = {5}
        sep = minimum_vertex_separator([(5, 10), (5, 11), (5, 12)])
        assert sep == {5}

    def test_duplicate_edges_ignored(self):
        sep = minimum_vertex_separator([(1, 2), (1, 2)])
        assert len(sep) == 1

    def test_covers_all_edges(self):
        cut = [(0, 10), (1, 10), (1, 11), (2, 12)]
        sep = minimum_vertex_separator(cut)
        for a, b in cut:
            assert a in sep or b in sep
        assert len(sep) <= 3
