"""Cross-method equivalence: DHL, IncH2H, DCH and the search baselines
must agree exactly on every query, statically and under updates.

This mirrors the paper's experimental setup where all methods answer the
same workloads; any disagreement is a bug in one of them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.astar import ALTHeuristic, astar_distance
from repro.baselines.dch import DCHIndex
from repro.baselines.dijkstra import bidirectional_dijkstra, dijkstra
from repro.baselines.inch2h import IncH2HIndex
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from tests.strategies import connected_graphs, update_sequences


@pytest.fixture(scope="module")
def road():
    from repro.graph.generators import delaunay_network

    return delaunay_network(300, seed=77)


@pytest.fixture(scope="module")
def trio(road):
    dhl = DHLIndex.build(road.copy(), DHLConfig(seed=0))
    inch2h = IncH2HIndex.build(road.copy())
    dch = DCHIndex.build(road.copy())
    return dhl, inch2h, dch


class TestStaticAgreement:
    def test_all_methods_agree(self, trio, road):
        dhl, inch2h, dch = trio
        rng = np.random.default_rng(0)
        for _ in range(150):
            s = int(rng.integers(0, 300))
            t = int(rng.integers(0, 300))
            d = dhl.distance(s, t)
            assert inch2h.distance(s, t) == d
            assert dch.distance(s, t) == d

    def test_search_methods_agree(self, trio, road):
        dhl, _, _ = trio
        alt = ALTHeuristic(road, k=3, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(25):
            s = int(rng.integers(0, 300))
            t = int(rng.integers(0, 300))
            d = dhl.distance(s, t)
            assert bidirectional_dijkstra(road, s, t) == d
            assert astar_distance(road, s, t) == d
            assert astar_distance(road, s, t, heuristic=alt.heuristic(t)) == d


class TestDynamicAgreement:
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        data=connected_graphs(min_n=5, max_n=16).flatmap(
            lambda g: update_sequences(g, max_steps=4, max_batch=3).map(
                lambda seq: (g, seq)
            )
        )
    )
    def test_indexes_track_identically(self, data):
        graph, sequence = data
        dhl = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=3, seed=0))
        inch2h = IncH2HIndex.build(graph.copy())
        dch = DCHIndex.build(graph.copy())
        for batch in sequence:
            seen = {}
            for u, v, w in batch:
                seen[(min(u, v), max(u, v))] = (u, v, w)
            batch = list(seen.values())
            dhl.update(batch)
            inch2h.update(batch)
            dch.update(batch)
        n = graph.num_vertices
        reference = dijkstra(dhl.graph, 0)
        for t in range(n):
            assert dhl.distance(0, t) == reference[t]
            assert inch2h.distance(0, t) == reference[t]
            assert dch.distance(0, t) == reference[t]

    def test_trio_after_batch_cycle(self, trio):
        dhl, inch2h, dch = trio
        edges = list(dhl.graph.edges())[:40]
        for index in (dhl, inch2h, dch):
            index.increase([(u, v, 2 * w) for u, v, w in edges])
        rng = np.random.default_rng(2)
        for _ in range(50):
            s = int(rng.integers(0, 300))
            t = int(rng.integers(0, 300))
            d = dhl.distance(s, t)
            assert inch2h.distance(s, t) == d
            assert dch.distance(s, t) == d
        for index in (dhl, inch2h, dch):
            index.decrease(edges)


class TestVerificationExperiment:
    def test_verify_reports_zero_errors(self):
        from repro.experiments.context import ExperimentContext
        from repro.experiments.verification import verify_correctness

        ctx = ExperimentContext(
            datasets=["NY"], scale=5e-4, num_batches=1, query_count=50
        )
        payload = verify_correctness(ctx, pairs_per_phase=15)
        for name, report in payload["raw"].items():
            for phase in ("static", "after_increase", "after_restore"):
                assert all(v == 0 for v in report[phase].values()), (name, phase)
