"""Tests for graph IO: DIMACS, edge lists, JSON."""

from __future__ import annotations

import io
import math

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.io import (
    graph_from_json,
    graph_to_json,
    read_dimacs,
    read_dimacs_coordinates,
    read_edge_list,
    write_dimacs,
    write_dimacs_coordinates,
    write_edge_list,
)

DIMACS_SAMPLE = """c example graph
p sp 3 4
a 1 2 5
a 2 1 5
a 2 3 7
a 3 2 7
"""


class TestDimacs:
    def test_read_undirected_collapses_arcs(self):
        g = read_dimacs(io.StringIO(DIMACS_SAMPLE).read().splitlines())
        assert isinstance(g, Graph)
        assert g.num_vertices == 3 and g.num_edges == 2
        assert g.weight(0, 1) == 5.0

    def test_read_directed(self):
        g = read_dimacs(DIMACS_SAMPLE.splitlines(), undirected=False)
        assert isinstance(g, DiGraph)
        assert g.num_arcs == 4

    def test_round_trip(self, small_road, tmp_path):
        path = tmp_path / "net.gr"
        write_dimacs(small_road, path, comment="round trip")
        loaded = read_dimacs(path)
        assert loaded.num_vertices == small_road.num_vertices
        assert loaded.num_edges == small_road.num_edges
        for u, v, w in small_road.edges():
            assert loaded.weight(u, v) == w

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(["a 1 2 3"])

    def test_vertex_out_of_range(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(["p sp 2 1", "a 1 5 3"])

    def test_malformed_lines(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(["p sp 2"])
        with pytest.raises(GraphFormatError):
            read_dimacs(["p sp 2 1", "a 1 2"])
        with pytest.raises(GraphFormatError):
            read_dimacs(["p sp 2 1", "x 1 2 3"])

    def test_self_loops_dropped(self):
        g = read_dimacs(["p sp 2 2", "a 1 1 4", "a 1 2 3"])
        assert g.num_edges == 1

    def test_coordinates_round_trip(self, tmp_path):
        coords = np.array([[1.0, 2.0], [3.0, 4.0]])
        path = tmp_path / "net.co"
        write_dimacs_coordinates(coords, path)
        loaded = read_dimacs_coordinates(path)
        assert np.array_equal(loaded, coords)

    def test_coordinates_malformed(self):
        with pytest.raises(GraphFormatError):
            read_dimacs_coordinates(["v 1 2"])


class TestEdgeList:
    def test_round_trip(self, diamond_graph, tmp_path):
        path = tmp_path / "edges.txt"
        write_edge_list(diamond_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_edges == diamond_graph.num_edges
        assert loaded.weight(0, 2) == 2.0

    def test_comments_and_blanks_skipped(self):
        g = read_edge_list(["# header", "", "0 1 2.5"])
        assert g.num_edges == 1 and g.weight(0, 1) == 2.5

    def test_malformed_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(["0 1"])


class TestJson:
    def test_round_trip_with_coords(self, small_road):
        clone = graph_from_json(graph_to_json(small_road))
        assert clone.num_vertices == small_road.num_vertices
        assert clone.num_edges == small_road.num_edges
        assert np.allclose(clone.coords, small_road.coords)

    def test_round_trip_inf_weight(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        g.set_weight(0, 1, math.inf)
        clone = graph_from_json(graph_to_json(g))
        assert math.isinf(clone.weight(0, 1))

    def test_invalid_json_raises(self):
        with pytest.raises(GraphFormatError):
            graph_from_json("{}")
