"""Tests for partition bitstrings and prefix LCA arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitstrings import PartitionBitstring, common_prefix_length


def from_bits(bits: str) -> PartitionBitstring:
    node = PartitionBitstring.root()
    for ch in bits:
        node = node.child(int(ch))
    return node


class TestPartitionBitstring:
    def test_root(self):
        root = PartitionBitstring.root()
        assert root.depth == 0 and root.value == 1 and root.bits() == ""

    def test_children_distinct(self):
        root = PartitionBitstring.root()
        assert root.child(0) != root.child(1)
        assert root.child(0).bits() == "0"
        assert root.child(1).bits() == "1"

    def test_child_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            PartitionBitstring.root().child(2)

    def test_leading_zeros_survive(self):
        node = from_bits("0001")
        assert node.bits() == "0001" and node.depth == 4

    def test_ancestor_at(self):
        node = from_bits("0110")
        assert node.ancestor_at(2).bits() == "01"
        assert node.ancestor_at(0) == PartitionBitstring.root()
        with pytest.raises(ValueError):
            node.ancestor_at(5)

    def test_is_prefix_of(self):
        a, b = from_bits("01"), from_bits("0110")
        assert a.is_prefix_of(b)
        assert not b.is_prefix_of(a)
        assert a.is_prefix_of(a)
        assert not from_bits("00").is_prefix_of(b)


class TestCommonPrefixLength:
    def test_identical(self):
        node = from_bits("1010")
        assert common_prefix_length(node, node) == 4

    def test_disjoint_at_root(self):
        assert common_prefix_length(from_bits("0"), from_bits("1")) == 0

    def test_partial_overlap(self):
        assert common_prefix_length(from_bits("0101"), from_bits("0110")) == 2

    def test_prefix_relation(self):
        assert common_prefix_length(from_bits("01"), from_bits("0111")) == 2

    @given(st.text(alphabet="01", max_size=40), st.text(alphabet="01", max_size=40))
    def test_matches_string_prefix(self, a, b):
        expected = 0
        for x, y in zip(a, b):
            if x != y:
                break
            expected += 1
        assert common_prefix_length(from_bits(a), from_bits(b)) == expected
