"""Sharded index: equivalence, routing, persistence, service integration."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.core.sharded import ShardedDHLIndex
from repro.exceptions import PartitionError, SerializationError
from repro.graph.generators import delaunay_network, grid_network
from repro.partition.regions import partition_regions, regions_from_assignment
from repro.service.service import DistanceService
from repro.service.workload import commute_traffic, replay
from tests.strategies import connected_graphs, update_sequences


def all_pairs(n: int) -> list[tuple[int, int]]:
    return [(s, t) for s in range(n) for t in range(n)]


def assert_matches_monolithic_and_dijkstra(graph, sharded, mono) -> None:
    n = graph.num_vertices
    pairs = all_pairs(n)
    got = sharded.distances(pairs)
    want = mono.distances(pairs)
    np.testing.assert_array_equal(got, want)
    for s in range(n):
        dist = dijkstra(graph, s)
        np.testing.assert_array_equal(got[s * n : (s + 1) * n], dist)


# ---------------------------------------------------------------------------
# region partition
# ---------------------------------------------------------------------------

def test_partition_regions_covers_all_vertices():
    graph = delaunay_network(200, seed=5, style="city", edge_factor=1.35)
    partition = partition_regions(graph, 4, seed=0)
    partition.validate()
    assert partition.k == 4
    assert sorted(v for r in partition.regions for v in r) == list(range(200))
    # Boundary vertices are exactly the cut-edge endpoints.
    endpoints = {u for u, _, _ in partition.cut_edges}
    endpoints |= {v for _, v, _ in partition.cut_edges}
    assert set(partition.boundary_vertices()) == endpoints


def test_partition_regions_clamps_k():
    graph = delaunay_network(64, seed=1)
    partition = partition_regions(graph, 500, seed=0)
    assert partition.k == 64
    assert all(len(r) == 1 for r in partition.regions)


def test_partition_regions_single_region():
    graph = grid_network(4, 4)
    partition = partition_regions(graph, 1)
    assert partition.k == 1
    assert partition.cut_edges == []
    assert partition.boundary == [[]]


def test_partition_regions_rejects_bad_k():
    graph = grid_network(3, 3)
    with pytest.raises(PartitionError):
        partition_regions(graph, 0)


def test_regions_from_assignment_roundtrip():
    graph = delaunay_network(150, seed=2)
    partition = partition_regions(graph, 3, seed=0)
    rebuilt = regions_from_assignment(graph, partition.region_of)
    assert rebuilt.regions == partition.regions
    assert rebuilt.boundary == partition.boundary
    assert rebuilt.cut_edges == partition.cut_edges
    with pytest.raises(PartitionError):
        regions_from_assignment(graph, partition.region_of[:-1])


# ---------------------------------------------------------------------------
# equivalence (acceptance property test)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("k", [2, 4])
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=connected_graphs(min_n=6, max_n=20))
def test_sharded_matches_monolithic_and_dijkstra(data, k):
    graph = data
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = ShardedDHLIndex.build(
        graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=1
    )
    assert_matches_monolithic_and_dijkstra(graph, sharded, mono)


@pytest.mark.parametrize("k", [2, 4])
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=connected_graphs(min_n=6, max_n=16).flatmap(
    lambda g: update_sequences(g, max_steps=4, max_batch=3).map(lambda s: (g, s))
))
def test_sharded_matches_after_interleaved_updates(data, k):
    graph, sequence = data
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = ShardedDHLIndex.build(
        graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=1
    )
    reference = graph.copy()
    for batch in sequence:
        mono.update(batch)
        sharded.update(batch)
        for u, v, w in batch:
            reference.set_weight(u, v, w)
        assert_matches_monolithic_and_dijkstra(reference, sharded, mono)


# ---------------------------------------------------------------------------
# routing and maintenance behaviour
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def road_pair():
    graph = delaunay_network(260, seed=11, style="city", edge_factor=1.35)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = ShardedDHLIndex.build(
        graph.copy(), k=4, config=DHLConfig(seed=0), build_workers=1
    )
    return graph, mono, sharded


def test_intra_region_update_touches_only_owning_shard(road_pair):
    graph, _, sharded = road_pair
    rid = max(range(sharded.k), key=lambda i: len(sharded.shard_vertices[i]))
    region = set(sharded.shard_vertices[rid].tolist())
    u, v, w = next(
        (u, v, w)
        for u, v, w in sharded.graph.edges()
        if u in region and v in region
    )
    stats = sharded.update([(u, v, 3.0 * w)])
    try:
        assert stats.touched_shards == [rid]
        assert stats.per_shard[rid].labels_changed >= 0
        assert stats.labels_changed == (
            stats.per_shard[rid].labels_changed
            + stats.overlay_stats.labels_changed
        )
    finally:
        sharded.update([(u, v, w)])


def test_cut_edge_update_routes_to_overlay(road_pair):
    graph, mono, sharded = road_pair
    assert sharded.partition.cut_edges, "expected cut edges at k=4"
    u, v, w = sharded.partition.cut_edges[0]
    stats = sharded.update([(u, v, 2.0 * w)])
    mono.update([(u, v, 2.0 * w)])
    try:
        assert stats.per_shard == {}  # no shard saw the cut edge
        assert stats.overlay_stats.labels_changed >= 0
        pairs = [(u, v), (v, u), (0, graph.num_vertices - 1)]
        np.testing.assert_array_equal(
            sharded.distances(pairs), mono.distances(pairs)
        )
    finally:
        sharded.update([(u, v, w)])
        mono.update([(u, v, w)])


def test_epoch_bumps_once_per_applied_batch(road_pair):
    _, _, sharded = road_pair
    before = sharded.epoch
    u, v, w = next(iter(sharded.graph.edges()))
    sharded.update([(u, v, w)])  # no-op: weight unchanged
    assert sharded.epoch == before
    sharded.update([(u, v, 2.0 * w)])
    assert sharded.epoch == before + 1
    # The stream coalesces to the final weight w (one real change back
    # from 2w), so exactly one more epoch — not two.
    sharded.update_coalesced([(u, v, 5.0 * w), (v, u, w)])
    assert sharded.epoch == before + 2
    assert sharded.graph.weight(u, v) == w
    # Coalescing a stream whose net effect equals the live weight
    # applies nothing and leaves the epoch alone.
    sharded.update_coalesced([(u, v, 5.0 * w), (v, u, w)])
    assert sharded.epoch == before + 2


def test_update_coalesced_last_write_wins(road_pair):
    graph, mono, sharded = road_pair
    u, v, w = next(iter(sharded.graph.edges()))
    sharded.update_coalesced([(u, v, 9.0 * w), (v, u, 4.0 * w)])
    mono.update([(u, v, 4.0 * w)])
    assert sharded.graph.weight(u, v) == 4.0 * w
    pairs = [(u, v), (u, (v + 7) % graph.num_vertices)]
    np.testing.assert_array_equal(sharded.distances(pairs), mono.distances(pairs))
    sharded.update([(u, v, w)])
    mono.update([(u, v, w)])


def test_facade_helpers(road_pair):
    graph, mono, sharded = road_pair
    n = graph.num_vertices
    targets = list(range(0, n, 7))
    np.testing.assert_array_equal(
        sharded.distances_from(3, targets), mono.distances_from(3, targets)
    )
    assert sharded.k_nearest(3, targets, 4) == mono.k_nearest(3, targets, 4)
    assert sharded.distance(3, 3) == 0.0
    assert math.isfinite(sharded.distance(0, n - 1))
    stats = sharded.stats()
    assert stats.k == 4
    assert len(stats.shards) == 4
    assert stats.label_entries > 0


def test_single_region_has_no_overlay():
    graph = grid_network(5, 5)
    sharded = ShardedDHLIndex.build(
        graph.copy(), k=1, config=DHLConfig(seed=0), build_workers=1
    )
    assert sharded.overlay is None
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    pairs = all_pairs(graph.num_vertices)
    np.testing.assert_array_equal(sharded.distances(pairs), mono.distances(pairs))


def test_parallel_build_matches_serial():
    """The process-pool build must be byte-for-byte reproducible and
    produce shards that still accept maintenance (the pickled-label
    regression below, exercised through the real pool)."""
    graph = delaunay_network(180, seed=9, style="city", edge_factor=1.35)
    serial = ShardedDHLIndex.build(
        graph.copy(), k=4, config=DHLConfig(seed=0), build_workers=1
    )
    pooled = ShardedDHLIndex.build(
        graph.copy(), k=4, config=DHLConfig(seed=0), build_workers=2
    )
    pairs = all_pairs(60)
    np.testing.assert_array_equal(pooled.distances(pairs), serial.distances(pairs))
    u, v, w = next(iter(graph.edges()))
    serial.update([(u, v, 3.0 * w)])
    pooled.update([(u, v, 3.0 * w)])
    np.testing.assert_array_equal(pooled.distances(pairs), serial.distances(pairs))


def test_pickled_index_still_maintains_correctly():
    """The parallel build ships shard indexes across processes by pickle.

    Label stores cache numpy *views* into their flat buffer; a naive
    pickle detached them, so maintenance on an unpickled index wrote
    into dead copies and queries served stale distances. Guard the
    explicit pickle path.
    """
    import pickle

    graph = delaunay_network(150, seed=4, style="city", edge_factor=1.35)
    reference = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    shipped = pickle.loads(pickle.dumps(reference))
    # Force the view cache to exist before pickling too.
    shipped.labels.views()
    shipped = pickle.loads(pickle.dumps(shipped))
    u, v, w = next(iter(graph.edges()))
    reference.update([(u, v, 4.0 * w)])
    shipped.update([(u, v, 4.0 * w)])
    pairs = all_pairs(min(graph.num_vertices, 40))
    np.testing.assert_array_equal(
        shipped.distances(pairs), reference.distances(pairs)
    )


# ---------------------------------------------------------------------------
# persistence (format v3)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mmap_labels", [False, True])
def test_sharded_save_load_roundtrip(tmp_path, road_pair, mmap_labels):
    graph, mono, sharded = road_pair
    path = tmp_path / "snapshot"
    sharded.save(path)
    assert (path / "shard_00" / "label_values.npy").exists()
    assert (path / "overlay" / "manifest.json").exists()
    loaded = ShardedDHLIndex.load(path, mmap_labels=mmap_labels)
    assert loaded.k == sharded.k
    pairs = [(0, graph.num_vertices - 1), (5, 9), (17, 17)]
    np.testing.assert_array_equal(loaded.distances(pairs), sharded.distances(pairs))
    # Maintenance after load (materialises writable labels under mmap).
    u, v, w = next(iter(loaded.graph.edges()))
    loaded.update([(u, v, 2.0 * w)])
    mono.update([(u, v, 2.0 * w)])
    try:
        np.testing.assert_array_equal(
            loaded.distances(pairs), mono.distances(pairs)
        )
    finally:
        mono.update([(u, v, w)])


def test_sharded_load_rejects_wrong_dir(tmp_path, road_pair):
    _, mono, _ = road_pair
    mono.save(tmp_path / "mono")
    with pytest.raises(SerializationError):
        ShardedDHLIndex.load(tmp_path / "mono")
    with pytest.raises(SerializationError):
        ShardedDHLIndex.load(tmp_path / "nothing-here")


# ---------------------------------------------------------------------------
# serving layer integration
# ---------------------------------------------------------------------------

def test_service_accepts_sharded_backend(road_pair):
    graph, _, _ = road_pair
    sharded = ShardedDHLIndex.build(
        graph.copy(), k=4, config=DHLConfig(seed=0), build_workers=1
    )
    events = commute_traffic(
        graph,
        sharded.region_of,
        boundary=sharded.partition.boundary,
        query_batches=6,
        batch_size=60,
        seed=3,
    )
    mono_service = DistanceService(DHLIndex.build(graph.copy(), DHLConfig(seed=0)))
    shard_service = DistanceService(sharded)
    mono_report = replay(mono_service, events)
    shard_report = replay(shard_service, events)
    assert round(mono_report.distance_checksum, 6) == round(
        shard_report.distance_checksum, 6
    )


def test_service_downgrades_fine_grained_for_sharded(road_pair):
    graph, _, sharded = road_pair
    service = DistanceService(sharded, fine_grained_eviction=True)
    assert service.fine_grained_eviction is False
    mono_service = DistanceService(
        DHLIndex.build(graph.copy(), DHLConfig(seed=0)),
        fine_grained_eviction=True,
    )
    assert mono_service.fine_grained_eviction is True
