"""Tests for workloads, reporting and the experiment harness."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.measure import mean, time_callable, time_queries
from repro.experiments.report import (
    ascii_table,
    fmt_ms,
    fmt_us,
    format_series,
    save_results,
)
from repro.experiments.workloads import (
    distance_stratified_queries,
    double_weights,
    random_query_pairs,
    restore_weights,
    sample_update_batches,
    scale_weights,
)


class TestWorkloads:
    def test_sample_update_batches_shapes(self, small_road):
        batches = sample_update_batches(small_road, 3, 20, seed=0)
        assert len(batches) == 3
        for batch in batches:
            assert len(batch) == 20
            # no duplicate edge inside a batch
            keys = {(min(u, v), max(u, v)) for u, v, _ in batch}
            assert len(keys) == 20
            for u, v, w in batch:
                assert small_road.weight(u, v) == w

    def test_batch_size_capped_by_edges(self, diamond_graph):
        batches = sample_update_batches(diamond_graph, 1, 100, seed=0)
        assert len(batches[0]) == diamond_graph.num_edges

    def test_weight_transformations(self):
        batch = [(0, 1, 4.0), (1, 2, 6.0)]
        assert double_weights(batch) == [(0, 1, 8.0), (1, 2, 12.0)]
        assert restore_weights(batch) == batch
        assert scale_weights(batch, 3.0) == [(0, 1, 12.0), (1, 2, 18.0)]

    def test_random_query_pairs(self):
        pairs = random_query_pairs(50, 100, seed=1)
        assert len(pairs) == 100
        assert all(s != t for s, t in pairs)

    def test_distance_stratified_sets(self, small_index):
        sets = distance_stratified_queries(
            small_index.distance, 300, per_set=20, seed=0
        )
        assert len(sets) == 10
        distances = [
            [small_index.distance(s, t) for s, t in bucket] for bucket in sets
        ]
        # bucket medians should be non-decreasing where buckets are filled
        medians = [sorted(d)[len(d) // 2] for d in distances if d]
        assert all(a <= b * 1.5 for a, b in zip(medians, medians[1:]))

    def test_stratified_bucket_ranges(self, small_index):
        sets = distance_stratified_queries(
            small_index.distance, 300, per_set=10, seed=0, l_min=500.0
        )
        for bucket in sets:
            for s, t in bucket:
                assert small_index.distance(s, t) > 500.0


class TestMeasure:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(1000))) > 0

    def test_time_queries_empty(self):
        assert time_queries(lambda s, t: 0.0, []) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series(
            "S", "x", [1, 2], {"m": [0.001, 0.002]}, y_format=fmt_ms
        )
        assert "1.000" in text and "2.000" in text

    def test_fmt_helpers(self):
        assert fmt_ms(0.0015) == "1.500"
        assert fmt_us(0.0000015) == "1.50"

    def test_save_results_handles_inf(self, tmp_path):
        save_results({"x": math.inf, "y": [1, math.inf]}, tmp_path / "r.json")
        data = json.loads((tmp_path / "r.json").read_text())
        assert data["x"] == "inf" and data["y"][1] == "inf"


class TestContext:
    @pytest.fixture
    def ctx(self):
        return ExperimentContext(
            datasets=["NY"], scale=5e-4, query_count=200, num_batches=2
        )

    def test_graph_cached(self, ctx):
        assert ctx.graph("NY") is ctx.graph("NY")

    def test_batch_size_scales(self, ctx):
        size = ctx.batch_size("NY")
        assert 10 <= size <= 1_000

    def test_indexes_cached_and_timed(self, ctx):
        idx = ctx.dhl("NY")
        assert ctx.dhl("NY") is idx
        assert ctx.built("NY").dhl_seconds > 0

    def test_drop_frees(self, ctx):
        ctx.dhl("NY")
        ctx.drop("NY")
        assert ctx.built("NY").dhl is None


class TestHarnessSmoke:
    """End-to-end smoke of every experiment on a tiny context."""

    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(
            datasets=["NY", "BAY"],
            scale=5e-4,
            num_batches=2,
            query_count=300,
            workers=2,
        )

    def test_table1(self, ctx):
        payload = __import__(
            "repro.experiments.tables", fromlist=["table1_datasets"]
        ).table1_datasets(ctx)
        assert "NY" in payload["text"]

    def test_table2(self, ctx):
        from repro.experiments.tables import table2_updates

        payload = table2_updates(ctx)
        assert set(payload["raw"]) == {"NY", "BAY"}
        for name in payload["raw"]:
            batch = payload["raw"][name]["batch"]
            assert all(v >= 0 for v in batch.values())

    def test_table3(self, ctx):
        from repro.experiments.tables import table3_index

        payload = table3_index(ctx)
        for name, row in payload["raw"].items():
            assert row["label_bytes"]["DHL"] < row["label_bytes"]["IncH2H"]

    def test_figure1(self, ctx):
        from repro.experiments.tables import figure1_summary

        payload = figure1_summary(ctx)
        assert len(payload["rows"]) == 6  # 2 datasets x 3 methods

    def test_figure5(self, ctx):
        from repro.experiments.figures import figure5_weight_sweep

        payload = figure5_weight_sweep(ctx)
        for name in ("NY", "BAY"):
            assert len(payload["raw"][name]["DHL+"]) == 9

    def test_figure6(self, ctx):
        from repro.experiments.figures import figure6_query_sets

        payload = figure6_query_sets(ctx)
        assert len(payload["raw"]["NY"]["DHL_us"]) == 10

    def test_figure7(self, ctx):
        from repro.experiments.figures import figure7_scalability

        payload = figure7_scalability(ctx)
        assert len(payload["raw"]["NY"]["sizes"]) == 10

    def test_runner_cli(self, tmp_path, monkeypatch):
        from repro.experiments.runner import main

        code = main(
            [
                "table1",
                "--datasets",
                "NY",
                "--scale",
                "0.0005",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "table1.json").exists()
