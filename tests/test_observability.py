"""The observability layer: registry, exporters, tracing, phases, slow log.

Two contracts matter. The *format* contract: the JSON-lines and
Prometheus exporters are parsed by CI tooling and external scrapers, so
their exact shapes are pinned here. The *zero-overhead* contract: with
the default null stack every instrumented call must be a no-op — no
recorded metrics, no spans, no kernel-phase collection — because the
serving hot paths call the instruments unconditionally.
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.graph.generators import grid_network
from repro.observability import (
    NULL_OBSERVABILITY,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    PhaseCollector,
    SlowLog,
    Span,
    Timer,
    best_of,
    collect_phases,
    maybe_child,
    phase,
    phases_active,
)
from repro.observability.tracing import Tracer
from repro.service.service import DistanceService

# ---------------------------------------------------------------------------
# registry instruments
# ---------------------------------------------------------------------------


def test_registry_get_or_create_identity():
    registry = MetricsRegistry()
    a = registry.counter("req_total")
    b = registry.counter("req_total")
    assert a is b
    labelled = registry.counter("req_total", labels={"phase": "q"})
    assert labelled is not a
    a.inc()
    a.inc(2)
    labelled.inc(5)
    snapshot = registry.snapshot()
    assert snapshot["req_total"]["value"] == 3
    assert snapshot['req_total{phase="q"}']["value"] == 5


def test_gauge_set_and_inc():
    registry = MetricsRegistry()
    gauge = registry.gauge("pending")
    gauge.set(7)
    gauge.inc(-2)
    assert registry.snapshot()["pending"] == {"type": "gauge", "value": 5}


def test_histogram_percentiles_interpolate():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", bounds=[1.0, 2.0, 4.0])
    for value in (0.5, 1.5, 1.5, 3.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.max == 3.0
    assert hist.mean == pytest.approx(1.625)
    # p50 lands in the (1, 2] bucket: 1 seen below, 2 in bucket,
    # target 2 -> halfway through the bucket.
    assert 1.0 < hist.percentile(50) <= 2.0
    # Finite buckets interpolate up to their upper edge.
    assert hist.percentile(100) == 4.0
    # The +Inf bucket is capped by the tracked max, not unbounded.
    hist.observe(10.0)
    assert 4.0 < hist.percentile(100) <= 10.0
    assert hist.max == 10.0
    summary = hist.summary()
    assert set(summary) == {"count", "sum", "mean", "p50", "p95", "p99", "max"}


def test_histogram_empty_and_validation():
    hist = MetricsRegistry().histogram("lat", bounds=[1.0])
    assert hist.percentile(99) == 0.0
    assert hist.mean == 0.0
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("bad", bounds=[])


# ---------------------------------------------------------------------------
# exporter format stability (parsed by CI tooling — exact shapes pinned)
# ---------------------------------------------------------------------------


def test_jsonl_export_format_stable():
    registry = MetricsRegistry()
    registry.counter("req_total").inc(2)
    assert registry.to_jsonl() == (
        '{"labels": {}, "name": "req_total", "type": "counter", "value": 2}\n'
    )


def test_jsonl_histogram_cumulative_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", labels={"phase": "q"}, bounds=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)  # overflow bucket
    (line,) = registry.to_jsonl().splitlines()
    record = json.loads(line)
    assert record["name"] == "lat"
    assert record["type"] == "histogram"
    assert record["labels"] == {"phase": "q"}
    assert record["count"] == 3
    assert record["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 3}
    assert record["max"] == 5.0


def test_prometheus_export_format_stable():
    registry = MetricsRegistry()
    registry.counter("req_total", help="requests served").inc(3)
    hist = registry.histogram("lat_seconds", labels={"phase": "q"}, bounds=[0.1, 1.0])
    hist.observe(0.05)
    assert registry.to_prometheus() == (
        "# HELP req_total requests served\n"
        "# TYPE req_total counter\n"
        "req_total 3\n"
        "# TYPE lat_seconds histogram\n"
        'lat_seconds_bucket{le="0.1",phase="q"} 1\n'
        'lat_seconds_bucket{le="1.0",phase="q"} 1\n'
        'lat_seconds_bucket{le="+Inf",phase="q"} 1\n'
        'lat_seconds_sum{phase="q"} 0.05\n'
        'lat_seconds_count{phase="q"} 1\n'
    )


def test_null_registry_is_inert():
    assert not NULL_REGISTRY.enabled
    counter = NULL_REGISTRY.counter("anything")
    counter.inc()
    histogram = NULL_REGISTRY.histogram("lat")
    histogram.observe(1.0)
    assert histogram is NULL_REGISTRY.gauge("other")  # shared singleton
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.to_jsonl() == ""
    assert NULL_REGISTRY.to_prometheus() == ""


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


def test_tracer_builds_nested_tree():
    tracer = Tracer(sample_rate=1.0)
    with tracer.trace("root", pairs=4) as root:
        with tracer.trace("stage_a"):
            assert tracer.current.name == "stage_a"
        with tracer.trace("stage_b"):
            pass
    assert tracer.current is None
    finished = tracer.last_trace()
    assert finished is root
    assert finished.seconds > 0.0
    assert finished.meta == {"pairs": 4}
    assert [child.name for child in finished.children] == ["stage_a", "stage_b"]


def test_tracer_deterministic_sampling():
    tracer = Tracer(sample_rate=0.25)
    for _ in range(8):
        with tracer.trace("request"):
            with tracer.trace("inner"):  # must no-op on unsampled roots
                pass
    assert len(tracer.finished) == 2  # every 4th of 8 requests
    assert all(root.children[0].name == "inner" for root in tracer.finished)


def test_tracer_zero_rate_records_nothing():
    tracer = Tracer(sample_rate=0.0)
    with tracer.trace("request"):
        assert tracer.current is None
    assert tracer.last_trace() is None
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)


def test_tracer_finishes_root_on_exception():
    tracer = Tracer(sample_rate=1.0)
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.trace("request"):
            raise RuntimeError("boom")
    assert tracer.last_trace().name == "request"
    assert tracer.current is None  # stack unwound


def test_tracer_keeps_bounded_history():
    tracer = Tracer(sample_rate=1.0, keep=4)
    for i in range(10):
        with tracer.trace(f"r{i}"):
            pass
    assert [span.name for span in tracer.finished] == ["r6", "r7", "r8", "r9"]


def test_span_dict_roundtrip_and_graft():
    span = Span("parent")
    span.child("local").finish()
    span.annotate(pairs=3)
    span.finish()
    shipped = {
        "name": "shard_compute",
        "seconds": 0.002,
        "children": [{"name": "sub[0]", "seconds": 0.001}],
    }
    span.graft(shipped)
    clone = Span.from_dict(span.to_dict())
    assert clone.to_dict() == span.to_dict()
    text = clone.format()
    assert "parent" in text and "shard_compute" in text and "sub[0]" in text
    assert "pairs=3" in text


def test_maybe_child_handles_missing_parent():
    with maybe_child(None, "anything") as nothing:
        assert nothing is None
    parent = Span("parent")
    with maybe_child(parent, "stage") as stage:
        assert stage.name == "stage"
    assert parent.children == [stage]


def test_null_tracer_is_inert():
    with NULL_TRACER.trace("request") as span:
        assert span is None
    assert NULL_TRACER.current is None
    assert NULL_TRACER.last_trace() is None


# ---------------------------------------------------------------------------
# kernel-phase collection
# ---------------------------------------------------------------------------


def test_phase_is_noop_without_collector():
    assert not phases_active()
    with phase("decrease.seed"):
        pass  # shared null context manager: nothing recorded anywhere
    assert not phases_active()


def test_collect_phases_accumulates_time_and_counts():
    with collect_phases() as collector:
        assert phases_active()
        for _ in range(3):
            with phase("flush.apply"):
                time.sleep(0.001)
    assert not phases_active()
    assert collector.counts["flush.apply"] == 3
    assert collector.as_dict()["flush.apply"] >= 0.003


def test_nested_collectors_both_observe():
    with collect_phases() as outer:
        with collect_phases() as inner:
            with phase("increase.seed"):
                pass
        with phase("decrease.seed"):
            pass
    assert set(inner.as_dict()) == {"increase.seed"}
    assert set(outer.as_dict()) == {"increase.seed", "decrease.seed"}


def test_phase_collector_is_addressable_directly():
    collector = PhaseCollector()
    collector.add("x", 0.5)
    collector.add("x", 0.25)
    assert collector.as_dict() == {"x": 0.75}
    assert collector.counts == {"x": 2}


# ---------------------------------------------------------------------------
# slow log + timing primitives
# ---------------------------------------------------------------------------


def test_slow_log_thresholds_and_bound():
    log = SlowLog(slow_query_seconds=0.1, slow_flush_seconds=0.5, keep=2)
    assert not log.note_query(0.05)
    assert log.note_query(0.2, pairs=10)
    assert not log.note_flush(0.4)
    assert log.note_flush(0.9, edges=3)
    log.note_query(0.3)
    records = log.as_list()
    assert len(records) == 2  # keep=2 bound
    assert records[-1]["kind"] == "query"
    assert records[0] == {"kind": "flush", "seconds": 0.9, "edges": 3}


def test_default_slow_log_never_fires():
    log = SlowLog()
    assert not log.note_query(1e9)
    assert log.as_list() == []


def test_timer_and_best_of():
    with Timer() as timer:
        time.sleep(0.001)
    assert timer.seconds >= 0.001
    calls = []
    best = best_of(lambda: calls.append(None), repeats=4)
    assert len(calls) == 4
    assert best >= 0.0


# ---------------------------------------------------------------------------
# Observability bundle + service integration
# ---------------------------------------------------------------------------


def test_null_observability_is_the_disabled_default():
    assert Observability.disabled() is NULL_OBSERVABILITY
    assert not NULL_OBSERVABILITY.is_enabled
    live = Observability.enabled(trace_sample_rate=1.0, slow_query_seconds=0.5)
    assert live.is_enabled
    assert live.tracer.sample_rate == 1.0
    assert live.slow_log.slow_query_seconds == 0.5
    assert math.isinf(live.slow_log.slow_flush_seconds)


@pytest.fixture()
def small_service_graph():
    return grid_network(5, 5)


def build_service(graph, observability=None, **kwargs):
    index = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    return DistanceService(index, observability=observability, **kwargs)


def test_service_disabled_observability_records_nothing(small_service_graph):
    service = build_service(small_service_graph)
    service.distances([(0, 5), (3, 9)])
    assert service.metrics() == {}
    assert service.last_trace() is None
    u, v, w = next(iter(small_service_graph.edges()))
    service.submit(u, v, 2.0 * w)
    stats = service.flush()
    assert stats.phases == {}  # kernels stayed uninstrumented


def test_service_metrics_snapshot_core_names(small_service_graph, tmp_path):
    obs = Observability.enabled(trace_sample_rate=1.0, slow_query_seconds=0.0)
    service = build_service(small_service_graph, observability=obs)
    service.distances([(0, 5), (3, 9), (0, 5)])
    u, v, w = next(iter(small_service_graph.edges()))
    service.submit(u, v, 2.0 * w)
    flush_stats = service.flush()
    snapshot = service.metrics()
    for name in (
        "dhl_queries_total",
        "dhl_query_batches_total",
        "dhl_query_seconds",
        "dhl_flushes_total",
        "dhl_flush_seconds",
        "dhl_flush_edges_total",
        "dhl_slow_queries_total",
        "dhl_epoch",
        "dhl_cache_hits",
        "dhl_coalescer_submitted",
    ):
        assert name in snapshot, name
    assert snapshot["dhl_queries_total"]["value"] == 3
    assert snapshot["dhl_query_seconds"]["count"] == 1
    assert snapshot["dhl_slow_queries_total"]["value"] == 1  # threshold 0
    # Maintenance phases surfaced both as labelled histograms and on the
    # returned MaintenanceStats.
    assert flush_stats.phases
    phase_keys = [
        key
        for key in snapshot
        if key.startswith("dhl_maintenance_phase_seconds")
    ]
    assert any('phase="flush.apply"' in key for key in phase_keys)
    assert obs.slow_log.as_list()  # threshold 0 catches the query

    out = service.dump_metrics(tmp_path / "metrics.jsonl")
    for line in out.read_text().splitlines():
        json.loads(line)
    prom = service.dump_metrics(tmp_path / "metrics.prom", fmt="prometheus")
    assert "# TYPE dhl_query_seconds histogram" in prom.read_text()
    with pytest.raises(ValueError, match="unknown metrics format"):
        service.dump_metrics(tmp_path / "nope", fmt="xml")


def test_service_trace_tree_stages(small_service_graph):
    obs = Observability.enabled(trace_sample_rate=1.0)
    service = build_service(small_service_graph, observability=obs)
    service.distances([(0, 5), (3, 9)])
    trace = service.last_trace()
    assert trace.name == "distances"
    stages = [child.name for child in trace.children]
    assert "cache_scan" in stages and "runtime" in stages
    assert trace.meta == {"pairs": 2}


def test_service_stats_str_and_worker_pool_field(small_service_graph):
    service = build_service(small_service_graph)
    service.distances([(0, 5)])
    stats = service.stats()
    assert stats.worker_pool is None  # in-process backends have no pool
    assert str(stats) == stats.summary()
    assert "workers :" not in str(stats)
