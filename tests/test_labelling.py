"""Tests for label construction (Algorithm 1) and the labelling structure.

The deep invariants checked here come straight from the paper:

* Definition 4.11 / Corollary 6.5 — ``L_v[i]`` is the distance between
  ``v`` and its rank-``i`` ancestor in the subgraph of G induced by the
  ancestor's descendants;
* Lemma 6.6 — the restricted 2-hop cover property.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra, dijkstra_subgraph
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.query import QueryEngine
from repro.partition.recursive import recursive_bisection
from tests.strategies import connected_graphs


def build_all(graph, leaf_size=4, seed=0):
    tree = recursive_bisection(graph, leaf_size=leaf_size, seed=seed)
    hq = QueryHierarchy.from_partition_tree(tree, graph.num_vertices)
    hu = UpdateHierarchy.build(graph, hq)
    labels = build_labelling(hu)
    return hq, hu, labels


class TestAlgorithm1:
    def test_label_lengths(self, small_road):
        hq, _, labels = build_all(small_road)
        for v in range(hq.n):
            assert len(labels.view(v)) == hq.tau[v] + 1

    def test_diagonal_zero(self, small_road):
        _, _, labels = build_all(small_road)
        labels.validate_basic()

    def test_entries_bounded_by_shortcuts(self, small_road):
        """L_v[tau(w)] <= w(v, w) for every shortcut (single-hop chain)."""
        hq, hu, labels = build_all(small_road)
        for v in range(hq.n):
            for w, weight in hu.wup[v].items():
                assert labels.view(v)[hq.tau[w]] <= weight

    def test_entries_upper_bound_graph_distance(self, small_road):
        """Subgraph distances can only exceed global distances."""
        hq, _, labels = build_all(small_road)
        for s in range(0, hq.n, 41):
            ref = dijkstra(small_road, s)
            chain = hq.ancestors(s)
            for i, w in enumerate(chain):
                assert labels.view(s)[i] >= ref[w] - 1e-9

    def test_definition_4_11_interval_subgraph_distance(self, small_road):
        """The central invariant: label entries are distances within the
        subgraph induced by the ancestor's descendants (Cor. 6.5)."""
        hq, _, labels = build_all(small_road)
        for v in range(0, hq.n, 53):
            chain = hq.ancestors(v)
            for i in range(len(chain) - 1):
                a = chain[i]
                expected = dijkstra_subgraph(
                    small_road, v, a,
                    lambda x, a=a: hq.precedes(a, x),
                )
                assert labels.view(v)[i] == expected, (v, i, a)

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(min_n=3, max_n=20))
    def test_definition_4_11_random(self, graph):
        hq, _, labels = build_all(graph, leaf_size=3)
        for v in range(graph.num_vertices):
            chain = hq.ancestors(v)
            for i in range(len(chain)):
                a = chain[i]
                expected = dijkstra_subgraph(
                    graph, v, a, lambda x, a=a: hq.precedes(a, x)
                )
                assert labels.view(v)[i] == expected


class TestTwoHopCover:
    def test_lemma_6_6_all_pairs(self, medium_random):
        """min over common ancestors of L_s[r] + L_t[r] == d_G(s, t)."""
        hq, _, labels = build_all(medium_random)
        engine = QueryEngine(hq, labels)
        n = medium_random.num_vertices
        for s in range(0, n, 7):
            ref = dijkstra(medium_random, s)
            for t in range(n):
                assert engine.distance(s, t) == ref[t], (s, t)

    def test_disconnected_pairs_are_inf(self):
        from repro.graph.graph import Graph

        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        hq, _, labels = build_all(g)
        engine = QueryEngine(hq, labels)
        assert math.isinf(engine.distance(0, 2))
        assert engine.distance(0, 1) == 1.0
        assert engine.distance(2, 3) == 1.0

    def test_self_distance_zero(self, small_road):
        hq, _, labels = build_all(small_road)
        engine = QueryEngine(hq, labels)
        assert engine.distance(5, 5) == 0.0


class TestQueryEngine:
    def test_distance_with_hub_returns_witness(self, medium_random):
        hq, _, labels = build_all(medium_random)
        engine = QueryEngine(hq, labels)
        ref = dijkstra(medium_random, 0)
        d, hub = engine.distance_with_hub(0, 11)
        assert d == ref[11]
        assert hub in hq.ancestors(0)
        # hub must lie on some shortest path
        assert (
            dijkstra(medium_random, hub)[0] + dijkstra(medium_random, hub)[11]
            == d
        )

    def test_distance_with_hub_trivial_cases(self, small_road):
        hq, _, labels = build_all(small_road)
        engine = QueryEngine(hq, labels)
        assert engine.distance_with_hub(3, 3) == (0.0, -1)

    def test_batch_distances(self, medium_random):
        hq, _, labels = build_all(medium_random)
        engine = QueryEngine(hq, labels)
        pairs = [(0, 5), (3, 9), (7, 7)]
        out = engine.distances(pairs)
        assert out.shape == (3,)
        assert out[2] == 0.0
        assert out[0] == engine.distance(0, 5)

    def test_search_space_size(self, medium_random):
        hq, _, labels = build_all(medium_random)
        engine = QueryEngine(hq, labels)
        assert engine.search_space_size(0, 5) == 2 * hq.common_ancestor_count(0, 5)


class TestLabellingStructure:
    def test_copy_and_equals(self, small_road):
        _, _, labels = build_all(small_road)
        clone = labels.copy()
        assert labels.equals(clone)
        clone.view(3)[0] += 1.0
        assert not labels.equals(clone)
        assert labels.diff_count(clone) == 1

    def test_entry_accessors(self, small_road):
        hq, _, labels = build_all(small_road)
        v = 10
        chain = hq.ancestors(v)
        w = chain[0]
        assert labels.entry(v, 0) == labels.entry_for(v, w)
        labels.set_entry(v, 0, 123.0)
        assert labels.entry(v, 0) == 123.0

    def test_num_entries_and_memory(self, small_road):
        hq, _, labels = build_all(small_road)
        assert labels.num_entries == sum(int(t) + 1 for t in hq.tau)
        assert labels.memory_bytes() == 8 * labels.num_entries

    def test_equals_tolerates_inf(self):
        tau = np.array([0, 0])
        a = HierarchicalLabelling.from_arrays(
            [np.array([0.0]), np.array([math.inf])], tau
        )
        b = HierarchicalLabelling.from_arrays(
            [np.array([0.0]), np.array([math.inf])], tau
        )
        assert a.equals(b)
        assert a.diff_count(b) == 0
