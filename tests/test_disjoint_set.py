"""Tests for the union-find structure."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.disjoint_set import DisjointSet


class TestDisjointSet:
    def test_initially_disjoint(self):
        ds = DisjointSet(4)
        assert ds.set_count == 4
        assert not ds.connected(0, 1)

    def test_union_connects(self):
        ds = DisjointSet(4)
        assert ds.union(0, 1)
        assert ds.connected(0, 1)
        assert ds.set_count == 3

    def test_union_same_set_returns_false(self):
        ds = DisjointSet(3)
        ds.union(0, 1)
        assert not ds.union(1, 0)

    def test_transitivity(self):
        ds = DisjointSet(5)
        ds.union(0, 1)
        ds.union(1, 2)
        assert ds.connected(0, 2)

    def test_size_of(self):
        ds = DisjointSet(5)
        ds.union(0, 1)
        ds.union(1, 2)
        assert ds.size_of(2) == 3
        assert ds.size_of(4) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_model_against_naive_partition(self, unions):
        ds = DisjointSet(20)
        groups = [{i} for i in range(20)]
        index = list(range(20))
        for a, b in unions:
            ds.union(a, b)
            ga, gb = index[a], index[b]
            if ga != gb:
                groups[ga] |= groups[gb]
                for member in groups[gb]:
                    index[member] = ga
                groups[gb] = set()
        for a in range(20):
            for b in range(20):
                assert ds.connected(a, b) == (index[a] == index[b])
