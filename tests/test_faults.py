"""Fault-tolerance primitives and the deterministic chaos harness.

Unit level: :class:`RetryPolicy` backoff determinism, the
:class:`CircuitBreaker` state machine, and :class:`FaultPlan` event
matching against a dummy handle (no processes involved).

Integration level, all through the production recovery paths with a
fake clock and a scripted :class:`FaultPlan` — no sleeps, no flaky
timing: a scripted kill fails over and the supervisor respawns the
replica; losing a shard's whole replica pool sheds that shard's pairs
as a typed :class:`PartialResultError` (or serves overlay bounds, or
hard-fails, per ``degraded_mode``) and the breaker reopens/closes
around the respawn; the service frontend re-aligns partial results
without poisoning its cache; the async frontend unfolds a degraded
merged batch so only the affected clients see the error.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.sharded import ShardedDHLIndex
from repro.exceptions import (
    PartialResultError,
    ProtocolTruncationError,
    ShardUnavailableError,
)
from repro.graph.generators import delaunay_network
from repro.observability import NULL_OBSERVABILITY
from repro.service.async_frontend import AsyncDistanceService, _QueryItem
from repro.service.faults import FaultEvent, FaultPlan
from repro.service.protocol import ComputeBatch, HealthCheck
from repro.service.runtime import CircuitBreaker, RetryPolicy, WorkerPoolStats
from repro.service.service import DistanceService
from repro.service.socket_runtime import SocketShardRuntime


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def build_sharded(graph, k=2):
    return ShardedDHLIndex.build(
        graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=1
    )


@pytest.fixture(scope="module")
def small_sharded():
    graph = delaunay_network(120, seed=33, style="city", edge_factor=1.35)
    return graph, build_sharded(graph)


def shard_pairs(sharded, sid, count=6):
    """Pairs with both endpoints inside one shard (only it is queried)."""
    vertices = [int(v) for v in sharded.shard_vertices[sid]]
    return [(vertices[i], vertices[-1 - i]) for i in range(count)]


def cross_pairs(sharded, i, j, count=6):
    vi = [int(v) for v in sharded.shard_vertices[i]]
    vj = [int(v) for v in sharded.shard_vertices[j]]
    return [(vi[k], vj[k]) for k in range(count)]


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

def test_retry_policy_is_deterministic_and_capped():
    policy = RetryPolicy()
    delays = [policy.delay(a) for a in range(8)]
    assert delays == [policy.delay(a) for a in range(8)]  # reproducible
    for attempt, delay in enumerate(delays):
        raw = min(
            policy.base_delay * policy.multiplier**attempt, policy.max_delay
        )
        assert raw * (1.0 - policy.jitter) <= delay <= raw
    assert max(delays) <= policy.max_delay


def test_retry_policy_without_jitter_is_exact():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.4)
    assert policy.delay(10) == pytest.approx(1.0)


def test_retry_policy_seed_changes_jitter_only():
    a, b = RetryPolicy(seed=0), RetryPolicy(seed=1)
    assert a.delay(3) != b.delay(3)
    assert abs(a.delay(3) - b.delay(3)) < a.max_delay * a.jitter


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

def test_breaker_state_machine_and_counters():
    stats = WorkerPoolStats()
    breaker = CircuitBreaker(0, stats)
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allows_requests

    breaker.trip()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allows_requests
    breaker.trip()  # idempotent: one transition counted
    assert stats.breaker_opens == 1
    assert stats.breakers_open == 1

    breaker.probation()
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allows_requests

    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert stats.breaker_closes == 1
    assert stats.breakers_open == 0

    breaker.probation()  # only OPEN moves to HALF_OPEN
    assert breaker.state == CircuitBreaker.CLOSED


# ---------------------------------------------------------------------------
# FaultPlan (unit: dummy handle, no processes)
# ---------------------------------------------------------------------------

class DummyHandle:
    def __init__(self, sid=0, replica=0, incarnation=0):
        self.sid = sid
        self.replica = replica
        self.incarnation = incarnation
        self.requests = 0
        self.health_requests = 0


def test_fault_event_rejects_unknown_action():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultEvent(0, 0, 0, "explode")


def test_fault_plan_fires_once_at_the_scripted_request():
    plan = FaultPlan().drop(0, 0, at_request=2)
    handle = DummyHandle()
    batch = ComputeBatch(epoch=0, subs=[])
    plan.apply(handle, batch)  # request 0
    plan.apply(handle, batch)  # request 1
    assert not plan.fired
    with pytest.raises(ProtocolTruncationError, match="injected drop"):
        plan.apply(handle, batch)  # request 2 fires
    assert len(plan.fired) == 1 and plan.fired[0].action == "drop"
    assert plan.exhausted
    plan.apply(handle, batch)  # request 3: nothing left


def test_fault_plan_targets_one_incarnation_only():
    plan = FaultPlan().truncate(0, 0, at_request=0, incarnation=1)
    original = DummyHandle(incarnation=0)
    respawned = DummyHandle(incarnation=1)
    batch = ComputeBatch(epoch=0, subs=[])
    plan.apply(original, batch)  # wrong incarnation: passes
    with pytest.raises(ProtocolTruncationError, match="injected truncation"):
        plan.apply(respawned, batch)


def test_stall_health_counts_probes_only():
    import socket as socket_module

    plan = FaultPlan().stall_health(0, 0, at_request=1)
    handle = DummyHandle()
    batch = ComputeBatch(epoch=0, subs=[])
    probe = HealthCheck(nonce=7)
    plan.apply(handle, batch)  # compute traffic never matches
    plan.apply(handle, probe)  # health request 0
    plan.apply(handle, batch)
    with pytest.raises(socket_module.timeout, match="injected stall_health"):
        plan.apply(handle, probe)  # health request 1 fires
    assert handle.requests == 4
    assert handle.health_requests == 2


# ---------------------------------------------------------------------------
# scripted kill -> failover -> supervised respawn (fake clock, no sleeps)
# ---------------------------------------------------------------------------

def test_scripted_kill_fails_over_and_supervisor_respawns(small_sharded):
    graph, sharded = small_sharded
    pairs = shard_pairs(sharded, 0)
    expected = sharded.distances(pairs)
    clock = FakeClock()
    # Request 0 of (shard 0, replica 0) is its first health probe (the
    # construction-time poll); request 1 is the first compute batch.
    plan = FaultPlan().kill(0, 0, at_request=1)
    with SocketShardRuntime(
        sharded,
        replicas=2,
        fault_plan=plan,
        clock=clock,
        supervise_interval=1000.0,
        retry_policy=RetryPolicy(base_delay=0.05, jitter=0.25, seed=0),
    ) as runtime:
        np.testing.assert_array_equal(runtime.distances(pairs), expected)
        assert plan.exhausted  # the scripted kill actually happened
        assert runtime.stats.failovers >= 1
        assert len(runtime.alive_replicas(0)) == 1

        # Backoff gate: a poll before the deadline does not respawn.
        summary = runtime.supervisor.poll(force=True)
        assert summary["respawned"] == 0
        clock.advance(1.0)
        summary = runtime.supervisor.poll(force=True)
        assert summary["respawned"] == 1
        assert runtime.stats.respawns == 1
        assert len(runtime.alive_replicas(0)) == 2
        fresh = runtime._groups[0][0]
        assert fresh.incarnation == 1
        assert len(runtime.supervisor.recovery_ms) == 1

        # The respawned incarnation serves correct answers.
        for _ in range(2):
            np.testing.assert_array_equal(runtime.distances(pairs), expected)


def test_supervisor_poll_is_rate_limited(small_sharded):
    _, sharded = small_sharded
    clock = FakeClock()
    with SocketShardRuntime(
        sharded, replicas=1, clock=clock, supervise_interval=5.0
    ) as runtime:
        assert "skipped" not in runtime.supervisor.poll()  # first is due
        assert runtime.supervisor.poll() == {"skipped": True}
        clock.advance(5.0)
        assert "skipped" not in runtime.supervisor.poll()
        assert "skipped" not in runtime.supervisor.poll(force=True)


def test_heartbeat_detects_silently_dead_replica(small_sharded):
    """A replica whose process died without a request in flight is
    caught by the health probe, not by a client request."""
    _, sharded = small_sharded
    clock = FakeClock()
    with SocketShardRuntime(
        sharded, replicas=2, clock=clock, supervise_interval=1000.0
    ) as runtime:
        victim = runtime._groups[0][1]
        victim.process.terminate()
        victim.process.join(10)
        assert victim.alive  # the parent has not noticed yet
        before = runtime.stats.heartbeat_timeouts
        summary = runtime.supervisor.poll(force=True)
        assert summary["timeouts"] == 1
        assert runtime.stats.heartbeat_timeouts == before + 1
        assert not victim.alive
        # And the slot comes back once the backoff elapses.
        clock.advance(1.0)
        assert runtime.supervisor.poll(force=True)["respawned"] == 1


def test_respawn_gives_up_after_policy_attempts(small_sharded):
    _, sharded = small_sharded
    clock = FakeClock()
    policy = RetryPolicy(attempts=2, base_delay=0.01, jitter=0.0)
    with SocketShardRuntime(
        sharded, replicas=2, clock=clock, supervise_interval=1000.0,
        retry_policy=policy,
    ) as runtime:
        supervisor = runtime.supervisor
        victim = runtime._groups[1][0]
        victim.alive = False
        supervisor._attempts[(1, 0)] = policy.attempts  # exhausted already
        clock.advance(1.0)
        summary = supervisor.poll(force=True)
        assert summary["gave_up"] == 1
        assert summary["respawned"] == 0


# ---------------------------------------------------------------------------
# degraded serving: shed / overlay / error
# ---------------------------------------------------------------------------

def _kill_shard(runtime, sid):
    for handle in runtime._groups[sid]:
        handle.process.terminate()
        handle.process.join(10)


def test_breaker_open_sheds_with_partial_result(small_sharded):
    graph, sharded = small_sharded
    dead = shard_pairs(sharded, 0, 4)
    live = shard_pairs(sharded, 1, 4)
    pairs = dead + live + [(dead[0][0], dead[0][0])]  # self-pair rides along
    expected_live = sharded.distances(live)
    with SocketShardRuntime(
        sharded, replicas=1, clock=FakeClock(), supervise_interval=1000.0
    ) as runtime:
        _kill_shard(runtime, 0)
        with pytest.raises(PartialResultError) as info:
            runtime.distances(pairs)
        err = info.value
        assert err.open_shards == (0,)
        # Shed positions are exactly the dead shard's non-self pairs.
        assert sorted(int(i) for i in err.shed) == list(range(len(dead)))
        assert np.isnan(err.distances[: len(dead)]).all()
        np.testing.assert_array_equal(
            err.distances[len(dead) : len(dead) + len(live)], expected_live
        )
        assert err.distances[-1] == 0.0  # self-pair never shed
        assert runtime._breakers[0].state == CircuitBreaker.OPEN
        assert runtime._breakers[1].state == CircuitBreaker.CLOSED
        assert runtime.stats.shed_pairs == len(dead)
        assert runtime.stats.breaker_opens >= 1

        # While the breaker is open the shard is shed again without
        # touching the transport — and live traffic still answers.
        with pytest.raises(PartialResultError):
            runtime.distances(dead)
        np.testing.assert_array_equal(runtime.distances(live), expected_live)


def test_breaker_closes_after_respawn_and_first_success(small_sharded):
    graph, sharded = small_sharded
    pairs = shard_pairs(sharded, 0, 4)
    expected = sharded.distances(pairs)
    clock = FakeClock()
    with SocketShardRuntime(
        sharded, replicas=1, clock=clock, supervise_interval=1000.0
    ) as runtime:
        _kill_shard(runtime, 0)
        with pytest.raises(PartialResultError):
            runtime.distances(pairs)
        assert runtime._breakers[0].state == CircuitBreaker.OPEN
        clock.advance(1.0)
        assert runtime.supervisor.poll(force=True)["respawned"] == 1
        assert runtime._breakers[0].state == CircuitBreaker.HALF_OPEN
        np.testing.assert_array_equal(runtime.distances(pairs), expected)
        assert runtime._breakers[0].state == CircuitBreaker.CLOSED
        assert runtime.stats.breaker_closes == 1
        assert runtime.stats.breakers_open == 0


def test_overlay_mode_serves_bounds_for_lost_shard(small_sharded):
    graph, sharded = small_sharded
    intra = shard_pairs(sharded, 0, 4)
    cross = cross_pairs(sharded, 0, 1, 4)
    exact_intra = sharded.distances(intra)
    exact_cross = sharded.distances(cross)
    with SocketShardRuntime(
        sharded, replicas=1, degraded_mode="overlay",
        clock=FakeClock(), supervise_interval=1000.0,
    ) as runtime:
        _kill_shard(runtime, 0)
        got_cross = runtime.distances(cross)
        # Cross-region routes all cross the boundary: overlay is exact.
        np.testing.assert_allclose(got_cross, exact_cross, rtol=1e-9)
        got_intra = runtime.distances(intra)
        # Intra answers are valid upper bounds (direct path missed).
        assert np.all(got_intra >= exact_intra - 1e-9)
        assert np.all(np.isfinite(got_intra))
        assert runtime.stats.degraded_pairs >= len(cross) + len(intra)
        assert runtime.stats.shed_pairs == 0


def test_error_mode_restores_hard_failure(small_sharded):
    _, sharded = small_sharded
    with SocketShardRuntime(
        sharded, replicas=1, degraded_mode="error"
    ) as runtime:
        _kill_shard(runtime, 0)
        with pytest.raises(ShardUnavailableError, match="shard 0"):
            runtime.distances(shard_pairs(sharded, 0, 2))


def test_unknown_degraded_mode_rejected(small_sharded):
    _, sharded = small_sharded
    with pytest.raises(ValueError, match="degraded_mode"):
        SocketShardRuntime(sharded, degraded_mode="panic")


# ---------------------------------------------------------------------------
# frontends: partial results re-align, never poison the cache
# ---------------------------------------------------------------------------

def test_service_realigns_partial_results_and_keeps_cache_clean(small_sharded):
    graph, sharded = small_sharded
    dead = shard_pairs(sharded, 0, 3)
    live = shard_pairs(sharded, 1, 3)
    expected_dead = sharded.distances(dead)
    expected_live = sharded.distances(live)
    clock = FakeClock()
    runtime = SocketShardRuntime(
        sharded, replicas=1, clock=clock, supervise_interval=1000.0
    )
    with DistanceService(runtime, cache_capacity=64) as service:
        _kill_shard(runtime, 0)
        mixed = [live[0], dead[0], live[1], dead[1]]
        with pytest.raises(PartialResultError) as info:
            service.distances(mixed)
        err = info.value
        assert [int(i) for i in err.shed] == [1, 3]  # caller positions
        assert err.open_shards == (0,)
        np.testing.assert_array_equal(
            err.distances[[0, 2]], [expected_live[0], expected_live[1]]
        )
        assert np.isnan(err.distances[[1, 3]]).all()
        stats = service.stats()
        assert stats.partial_batches == 1
        assert stats.shed_pairs == 2
        assert "partial batches" in stats.summary()

        # Served keys were cached; shed keys were not.
        np.testing.assert_array_equal(
            service.distances([live[0], live[1]]),
            [expected_live[0], expected_live[1]],
        )
        clock.advance(1.0)
        assert runtime.supervisor.poll(force=True)["respawned"] == 1
        # A nan cached during degradation would surface here.
        np.testing.assert_array_equal(service.distances(dead), expected_dead)


def test_async_frontend_unfolds_partial_batches():
    class FakeBackendService:
        observability = NULL_OBSERVABILITY

        def distances(self, pairs):
            out = np.arange(len(pairs), dtype=np.float64)
            out[1] = np.nan
            raise PartialResultError(out, np.array([1]), {3})

    async def drive():
        frontend = AsyncDistanceService(FakeBackendService())
        loop = asyncio.get_running_loop()
        clean = _QueryItem(pairs=[(0, 1)], future=loop.create_future())
        degraded = _QueryItem(pairs=[(2, 3)], future=loop.create_future())
        frontend._pending_pairs = 2
        await frontend._execute_run(loop, [clean, degraded])
        assert list(await clean.future) == [0.0]
        with pytest.raises(PartialResultError) as info:
            await degraded.future
        err = info.value
        assert [int(i) for i in err.shed] == [0]  # re-based to the item
        assert np.isnan(err.distances[0])
        assert err.open_shards == (3,)
        assert frontend.stats.partial_requests == 1
        assert frontend.stats.answered_requests == 1
        frontend._executor.shutdown(wait=True)

    asyncio.run(drive())
