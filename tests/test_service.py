"""The serving layer: cache, coalescer, and DistanceService correctness.

The load-bearing checks: cached results must match a fresh Dijkstra on
the *current* graph across long interleaved query/update streams, in
both invalidation modes, and coalescing must never change the net effect
of a change stream.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.graph.generators import delaunay_network
from repro.service import (
    DistanceService,
    EpochLRUCache,
    QueryBatch,
    UpdateBatch,
    UpdateCoalescer,
    replay,
    rush_hour_traffic,
    uniform_traffic,
    zipf_hotspot_traffic,
)
from repro.utils.rng import make_rng, sample_pairs
from tests.strategies import connected_graphs, update_sequences


def build_index(graph, leaf_size=4):
    return DHLIndex.build(graph.copy(), DHLConfig(leaf_size=leaf_size, seed=0))


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------
class TestEpochLRUCache:
    def test_hit_and_miss_accounting(self):
        cache = EpochLRUCache(capacity=4)
        assert cache.get((1, 2)) is None
        cache.put((1, 2), 10.0, 7, epoch=0)
        assert cache.get((1, 2)) == (10.0, 7, 0)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_lru_eviction_order(self):
        cache = EpochLRUCache(capacity=2)
        cache.put((0, 1), 1.0, -1, 0)
        cache.put((0, 2), 2.0, -1, 0)
        cache.get((0, 1))  # (0, 2) becomes least-recent
        cache.put((0, 3), 3.0, -1, 0)
        assert (0, 2) not in cache
        assert (0, 1) in cache and (0, 3) in cache
        assert cache.stats().lru_evictions == 1

    def test_watermark_invalidates_lazily(self):
        cache = EpochLRUCache(capacity=8)
        cache.put((1, 2), 5.0, 3, epoch=0)
        cache.invalidate_all(epoch=1)
        assert (1, 2) not in cache
        assert cache.get((1, 2)) is None  # lazily dropped
        assert cache.stats().invalidated == 1
        cache.put((1, 2), 6.0, 3, epoch=1)
        assert cache.get((1, 2)) == (6.0, 3, 1)

    def test_fine_grained_eviction_by_endpoint_and_hub(self):
        cache = EpochLRUCache(capacity=8)
        cache.put((1, 2), 5.0, 9, 0)
        cache.put((3, 4), 6.0, 10, 0)
        cache.put((5, 6), 7.0, 11, 0)
        removed = cache.evict_vertices({3, 11})
        assert removed == 2
        assert (1, 2) in cache
        assert (3, 4) not in cache  # endpoint match
        assert (5, 6) not in cache  # hub match
        assert cache.evict_vertices(set()) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EpochLRUCache(capacity=0)


# ---------------------------------------------------------------------------
# coalescer
# ---------------------------------------------------------------------------
class TestUpdateCoalescer:
    def test_duplicates_merge_last_write_wins(self, path_graph):
        co = UpdateCoalescer()
        co.add(0, 1, 5.0)
        co.add(1, 0, 7.0)  # same road, either orientation
        co.add(0, 1, 9.0)
        assert co.pending_edges == 1
        batch = co.drain(path_graph)
        assert batch.increases == [(0, 1, 9.0)]
        assert not batch.decreases and batch.noops == 0
        stats = co.stats()
        assert stats.submitted == 3 and stats.merged_duplicates == 2

    def test_raise_then_restore_is_noop(self, path_graph):
        co = UpdateCoalescer()
        original = path_graph.weight(1, 2)
        co.add(1, 2, original * 4)
        co.add(1, 2, original)
        batch = co.drain(path_graph)
        assert batch.size == 0 and batch.noops == 1
        assert co.stats().noops_dropped == 1

    def test_mixed_batch_splits(self, path_graph):
        co = UpdateCoalescer()
        co.add(0, 1, path_graph.weight(0, 1) + 3)
        co.add(2, 3, path_graph.weight(2, 3) - 1)
        co.add(3, 4, path_graph.weight(3, 4))  # explicit no-op
        batch = co.drain(path_graph)
        assert batch.increases == [(0, 1, path_graph.weight(0, 1) + 3)]
        assert batch.decreases == [(2, 3, path_graph.weight(2, 3) - 1)]
        assert batch.noops == 1
        assert batch.changes() == batch.increases + batch.decreases
        assert not co  # drained

    def test_drain_empty(self, path_graph):
        co = UpdateCoalescer()
        assert co.drain(path_graph).size == 0
        assert len(co) == 0


# ---------------------------------------------------------------------------
# service
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def service_graph():
    return delaunay_network(150, seed=21)


def fresh_service(graph, **kwargs):
    return DistanceService(build_index(graph), **kwargs)


class TestDistanceService:
    def test_batch_matches_per_pair_engine(self, small_index):
        service = DistanceService(small_index, cache_capacity=16_384)
        n = small_index.graph.num_vertices
        pairs = sample_pairs(n, 10_000, make_rng(1), distinct=False)
        out = service.distances(pairs)
        distance = small_index.engine.distance
        assert np.array_equal(out, [distance(s, t) for s, t in pairs])
        # Second pass is served from the cache — still identical.
        assert np.array_equal(service.distances(pairs), out)
        assert service.stats().cache.hits > 0

    def test_single_distance_cached(self, service_graph):
        service = fresh_service(service_graph)
        d = service.distance(3, 77)
        assert d == service.index.distance(3, 77)
        assert service.distance(77, 3) == d  # symmetric key
        assert service.stats().cache.hits == 1
        assert service.distance(5, 5) == 0.0

    @pytest.mark.parametrize("fine_grained", [False, True])
    def test_updates_invalidate_cached_results(self, service_graph, fine_grained):
        service = fresh_service(
            service_graph, fine_grained_eviction=fine_grained
        )
        rng = make_rng(9)
        n = service_graph.num_vertices
        pairs = sample_pairs(n, 400, rng)
        service.distances(pairs)
        edges = list(service.index.graph.edges())[:25]
        service.submit_many([(u, v, 3 * w) for u, v, w in edges])
        out = service.distances(pairs)  # auto-flush, then query
        for (s, t), got in zip(pairs[:60], out[:60]):
            assert got == dijkstra(service.index.graph, s)[t]

    @pytest.mark.parametrize("fine_grained", [False, True])
    def test_fifty_interleaved_coalesced_batches_stay_correct(
        self, service_graph, fine_grained
    ):
        """Acceptance: cached results match fresh Dijkstra across >= 50
        interleaved coalesced update batches."""
        service = fresh_service(
            service_graph,
            fine_grained_eviction=fine_grained,
            cache_capacity=8_192,
        )
        rng = make_rng(1234)
        n = service_graph.num_vertices
        base = {(u, v): w for u, v, w in service_graph.edges()}
        edge_list = list(base)
        factors = (0.5, 1.0, 2.0, 3.0)
        hot = sample_pairs(n, 40, rng)  # recurring pairs keep the cache warm
        for round_no in range(50):
            picks = rng.choice(len(edge_list), size=6, replace=False)
            for p in picks:
                u, v = edge_list[int(p)]
                factor = factors[int(rng.integers(len(factors)))]
                service.submit(u, v, float(max(1, round(base[(u, v)] * factor))))
                if round_no % 3 == 0:  # duplicate traffic to coalesce
                    service.submit(u, v, float(base[(u, v)]))
            pairs = hot + sample_pairs(n, 10, rng)
            out = service.distances(pairs)
            sources = {s for s, _ in pairs[:12]}
            reference = {s: dijkstra(service.index.graph, s) for s in sources}
            for (s, t), got in zip(pairs[:12], out[:12]):
                assert got == reference[s][t], (round_no, s, t)
        stats = service.stats()
        assert stats.coalescer.flushes >= 50
        assert stats.cache.hits > 0  # the cache genuinely served traffic

    def test_flush_threshold_auto_applies(self, service_graph):
        service = fresh_service(service_graph, flush_threshold=3)
        edges = list(service.index.graph.edges())[:3]
        for u, v, w in edges[:2]:
            service.submit(u, v, 2 * w)
        assert service.pending_updates == 2 and service.epoch == 0
        u, v, w = edges[2]
        service.submit(u, v, 2 * w)  # third distinct edge trips the flush
        assert service.pending_updates == 0
        assert service.epoch >= 1

    def test_noop_flush_keeps_epoch_and_cache(self, service_graph):
        service = fresh_service(service_graph)
        pairs = sample_pairs(service_graph.num_vertices, 50, make_rng(3))
        service.distances(pairs)
        (u, v, w) = next(iter(service.index.graph.edges()))
        service.submit(u, v, 5 * w)
        service.submit(u, v, w)  # restored before anyone queried
        stats = service.flush()
        assert stats.shortcuts_changed == 0
        assert service.epoch == 0
        service.distances(pairs)
        assert service.stats().cache.hits >= len(pairs)

    def test_staleness_mode_defers_updates(self, service_graph):
        service = fresh_service(service_graph, auto_flush_on_query=False)
        (u, v, w) = next(iter(service.index.graph.edges()))
        before = service.distance(u, v)
        service.submit(u, v, 10 * w)
        assert service.distance(u, v) == before  # bounded staleness
        service.flush()
        assert service.distance(u, v) == service.index.distance(u, v)

    def test_direct_index_updates_invalidate_via_epoch_drift(
        self, service_graph
    ):
        service = fresh_service(service_graph)
        (u, v, w) = next(iter(service.index.graph.edges()))
        service.distance(u, v)  # cached
        service.index.increase([(u, v, 10 * w)])  # bypasses the service
        assert service.distance(u, v) == dijkstra(service.index.graph, u)[v]
        service.index.delete_edge(u, v)  # structural op, also direct
        assert service.distance(u, v) == dijkstra(service.index.graph, u)[v]

    def test_fine_grained_flush_does_not_absorb_foreign_updates(
        self, service_graph
    ):
        # A flush evicts only its own batch's vertices; epoch drift from a
        # direct index update must still nuke the cache, even when the
        # flush runs first in the query path.
        service = fresh_service(service_graph, fine_grained_eviction=True)
        edges = list(service.index.graph.edges())
        (u, v, w) = edges[0]
        service.distance(u, v)  # cached
        service.index.increase([(u, v, 10 * w)])  # foreign update
        (a, b, wb) = edges[-1]  # unrelated change through the service
        service.submit(a, b, 2 * wb)
        assert service.distance(u, v) == dijkstra(service.index.graph, u)[v]

    def test_k_nearest_through_cache(self, service_graph):
        service = fresh_service(service_graph)
        candidates = list(range(0, 140, 5))
        assert service.k_nearest(7, candidates, 5) == service.index.k_nearest(
            7, candidates, 5
        )

    def test_fine_grained_keeps_unaffected_entries(self):
        # A path graph: changing the far end cannot affect the near end.
        from repro.graph.graph import Graph

        g = Graph(8)
        for i in range(7):
            g.add_edge(i, i + 1, 2.0)
        service = DistanceService(
            build_index(g, leaf_size=2), fine_grained_eviction=True
        )
        near = service.distance(0, 1)
        service.submit(6, 7, 9.0)
        service.flush()
        stats = service.stats()
        assert (0, 1) in service.cache or stats.cache.invalidated == 0
        assert service.distance(0, 1) == near
        assert service.distance(0, 7) == dijkstra(service.index.graph, 0)[7]


# ---------------------------------------------------------------------------
# workloads + replay
# ---------------------------------------------------------------------------
class TestWorkloads:
    @pytest.mark.parametrize(
        "maker", [uniform_traffic, zipf_hotspot_traffic, rush_hour_traffic]
    )
    def test_replay_restores_graph_and_matches_dijkstra(
        self, service_graph, maker
    ):
        service = fresh_service(service_graph, fine_grained_eviction=True)
        baseline = {(u, v): w for u, v, w in service_graph.edges()}
        events = maker(service.index.graph, seed=5)
        assert any(isinstance(e, QueryBatch) for e in events)
        assert any(isinstance(e, UpdateBatch) for e in events)
        report = replay(service, events)
        assert report.queries > 0 and report.update_batches > 0
        assert math.isfinite(report.distance_checksum)
        # Every stream ends with weights restored to base.
        for (u, v), w in baseline.items():
            assert service.index.graph.weight(u, v) == w
        ref = dijkstra(service.index.graph, 0)
        for t in range(0, service_graph.num_vertices, 13):
            assert service.distance(0, t) == ref[t]

    def test_replay_deterministic_checksum(self, service_graph):
        events = zipf_hotspot_traffic(service_graph, query_batches=8, seed=2)
        reports = [
            replay(fresh_service(service_graph), list(events)) for _ in range(2)
        ]
        assert reports[0].distance_checksum == reports[1].distance_checksum

    def test_zipf_alpha_validation(self, service_graph):
        with pytest.raises(ValueError):
            zipf_hotspot_traffic(service_graph, alpha=1.0)


class TestPropertyBased:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        data=connected_graphs(min_n=4, max_n=16).flatmap(
            lambda g: update_sequences(g, max_steps=4, max_batch=3).map(
                lambda seq: (g, seq)
            )
        ),
        fine_grained=st.booleans(),
    )
    def test_interleaved_streams_match_fresh_dijkstra(self, data, fine_grained):
        graph, sequence = data
        service = DistanceService(
            DHLIndex.build(graph, DHLConfig(leaf_size=3, seed=0)),
            fine_grained_eviction=fine_grained,
            cache_capacity=512,
        )
        n = graph.num_vertices
        pairs = [(s, t) for s in range(n) for t in range(n)]
        for batch in sequence:
            service.distances(pairs)  # populate the cache pre-update
            service.submit_many(batch)
            out = service.distances(pairs)
            ref = np.stack([dijkstra(service.index.graph, s) for s in range(n)])
            assert np.array_equal(out, ref.reshape(-1)), "stale cache entry"
