"""Tests for the contraction engine and min-degree ordering."""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra_subgraph
from repro.graph.graph import Graph
from repro.hierarchy.contraction import contract_in_order, min_degree_order
from tests.strategies import connected_graphs


class TestContractInOrder:
    def test_path_graph_shortcuts(self, path_graph):
        # Contract middle vertices first: each contraction bridges ends.
        sc = contract_in_order(path_graph, [2, 1, 3, 0, 4])
        # contracting 2 adds (1,3) = 2+3 = 5; contracting 1 adds (0,3)=1+5;
        # contracting 3 adds (0,4) = 6+4
        assert sc.weight(1, 3) == 5.0
        assert sc.weight(0, 3) == 6.0
        assert sc.weight(0, 4) == 10.0

    def test_rejects_non_permutation(self, path_graph):
        with pytest.raises(ValueError):
            contract_in_order(path_graph, [0, 1, 2])
        with pytest.raises(ValueError):
            contract_in_order(path_graph, [0, 0, 1, 2, 3])

    def test_up_down_consistency(self, medium_random):
        sc = contract_in_order(medium_random, list(range(medium_random.num_vertices)))
        for v in range(medium_random.num_vertices):
            for u in sc.up[v]:
                assert sc.rank[u] > sc.rank[v]
                assert v in sc.down_sets[u]
            for u in sc.down[v]:
                assert sc.rank[u] < sc.rank[v]

    def test_every_edge_is_a_shortcut(self, medium_random):
        sc = contract_in_order(medium_random, list(range(medium_random.num_vertices)))
        for u, v, _ in medium_random.edges():
            assert sc.has_shortcut(u, v)

    def test_minimum_weight_property(self, medium_random):
        sc = contract_in_order(medium_random, list(range(medium_random.num_vertices)))
        sc.verify_minimum_weight_property()

    def test_shortcut_weight_is_valley_distance(self, small_road):
        """w(u, v) equals the shortest valley-path length (Definition 4.6):
        intermediate vertices must rank strictly below both endpoints."""
        order = list(range(small_road.num_vertices))
        sc = contract_in_order(small_road, order)
        rank = sc.rank
        checked = 0
        for v in range(0, small_road.num_vertices, 29):
            for u in sc.up[v]:
                cap = min(rank[v], rank[u])
                expected = dijkstra_subgraph(
                    small_road, v, u, lambda x, u=u, cap=cap: rank[x] < cap or x == u
                )
                assert sc.weight(v, u) == expected
                checked += 1
        assert checked > 0

    def test_weight_accessors(self, path_graph):
        sc = contract_in_order(path_graph, [2, 1, 3, 0, 4])
        old = sc.set_weight(1, 3, 99.0)
        assert old == 5.0
        assert sc.weight(3, 1) == 99.0

    def test_num_shortcuts_and_memory(self, medium_random):
        sc = contract_in_order(medium_random, list(range(medium_random.num_vertices)))
        assert sc.num_shortcuts >= medium_random.num_edges
        assert sc.memory_bytes() > 0

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(max_n=18))
    def test_property_3_1_random(self, graph):
        sc = contract_in_order(graph, list(range(graph.num_vertices)))
        sc.verify_minimum_weight_property()


class TestMinDegreeOrder:
    def test_is_permutation(self, medium_random):
        order = min_degree_order(medium_random)
        assert sorted(order) == list(range(medium_random.num_vertices))

    def test_path_graph_contracts_inward(self):
        g = Graph(4)
        for i in range(3):
            g.add_edge(i, i + 1, 1.0)
        order = min_degree_order(g)
        # endpoints (degree 1) come first
        assert set(order[:2]) <= {0, 3, 1, 2}
        assert order[0] in (0, 3)

    def test_star_contracts_leaves_first(self):
        g = Graph(5)
        for leaf in range(1, 5):
            g.add_edge(0, leaf, 1.0)
        order = min_degree_order(g)
        assert order[-1] == 0 or order[-2] == 0  # hub is among the last

    def test_produces_sparser_hierarchy_than_random(self, small_road):
        smart = contract_in_order(small_road, min_degree_order(small_road))
        naive = contract_in_order(small_road, list(range(small_road.num_vertices)))
        assert smart.num_shortcuts <= naive.num_shortcuts
