"""Tests for the directed graph structure."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound, GraphError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph


class TestDiGraph:
    def test_arcs_are_directional(self):
        g = DiGraph(3)
        g.add_arc(0, 1, 2.0)
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)
        assert g.weight(0, 1) == 2.0
        with pytest.raises(EdgeNotFound):
            g.weight(1, 0)

    def test_in_out_neighbors(self):
        g = DiGraph(3)
        g.add_arc(0, 1, 1.0)
        g.add_arc(2, 1, 3.0)
        assert set(g.in_neighbors(1)) == {0, 2}
        assert set(g.out_neighbors(0)) == {1}

    def test_duplicate_arc_rejected(self):
        g = DiGraph(2)
        g.add_arc(0, 1, 1.0)
        with pytest.raises(GraphError):
            g.add_arc(0, 1, 2.0)

    def test_from_arcs_keeps_min(self):
        g = DiGraph.from_arcs(2, [(0, 1, 5.0), (0, 1, 2.0)])
        assert g.weight(0, 1) == 2.0

    def test_set_weight_updates_both_tables(self):
        g = DiGraph(2)
        g.add_arc(0, 1, 1.0)
        g.set_weight(0, 1, 4.0)
        assert g.in_neighbors(1)[0] == 4.0

    def test_from_undirected_symmetric(self, diamond_graph):
        dg = DiGraph.from_undirected(diamond_graph)
        assert dg.num_arcs == 2 * diamond_graph.num_edges
        assert dg.is_symmetric()

    def test_reversed(self):
        g = DiGraph(3)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 2, 2.0)
        r = g.reversed()
        assert r.has_arc(1, 0) and r.has_arc(2, 1)
        assert not r.has_arc(0, 1)

    def test_to_undirected_min_of_directions(self):
        g = DiGraph(2)
        g.add_arc(0, 1, 5.0)
        g.add_arc(1, 0, 2.0)
        u = g.to_undirected()
        assert isinstance(u, Graph)
        assert u.weight(0, 1) == 2.0

    def test_is_symmetric_detects_asymmetry(self):
        g = DiGraph(2)
        g.add_arc(0, 1, 1.0)
        assert not g.is_symmetric()
        g.add_arc(1, 0, 1.0)
        assert g.is_symmetric()
        g.set_weight(1, 0, 3.0)
        assert not g.is_symmetric()
