"""The TCP replica runtime: parity, failover, resync, hygiene.

The load-bearing checks: the socket transport must answer exactly what
the in-process runtime (and Dijkstra) answers across interleaved update
batches synced as inline protocol deltas; killing a replica mid-replay
must lose zero requests (failover re-sends the full batch to a
sibling); a replica that missed an epoch broadcast must refuse, resync
via republish, and recover; and ``close()`` must reap every replica
process.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.core.sharded import ShardedDHLIndex
from repro.exceptions import ServiceRuntimeError
from repro.graph.generators import delaunay_network, grid_network
from repro.service.runtime import InProcessRuntime
from repro.service.service import DistanceService
from repro.service.socket_runtime import SocketShardRuntime
from tests.strategies import connected_graphs, update_sequences


def build_sharded(graph, k=4):
    return ShardedDHLIndex.build(
        graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=1
    )


@pytest.fixture(scope="module")
def socket_stack():
    """One road network served three ways: mono, sharded, socket pool."""
    graph = delaunay_network(200, seed=21, style="city", edge_factor=1.35)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = build_sharded(graph)
    runtime = SocketShardRuntime(sharded, replicas=2)
    yield graph, mono, sharded, runtime
    runtime.close()


def sample_pairs_grid(n, step_s=7, step_t=5):
    return [(s, t) for s in range(0, n, step_s) for t in range(0, n, step_t)]


# ---------------------------------------------------------------------------
# query parity
# ---------------------------------------------------------------------------

def test_socket_runtime_matches_monolithic(socket_stack):
    graph, mono, _, runtime = socket_stack
    pairs = sample_pairs_grid(graph.num_vertices)
    np.testing.assert_array_equal(runtime.distances(pairs), mono.distances(pairs))
    assert runtime.distance(3, 3) == 0.0
    assert runtime.distance(0, graph.num_vertices - 1) == mono.distance(
        0, graph.num_vertices - 1
    )


def test_socket_runtime_matches_in_process_runtime(socket_stack):
    graph, _, sharded, runtime = socket_stack
    pairs = sample_pairs_grid(graph.num_vertices, 11, 3)
    in_process = InProcessRuntime(sharded)
    np.testing.assert_array_equal(
        runtime.distances(pairs), in_process.distances(pairs)
    )


def test_reads_round_robin_across_replicas(socket_stack):
    graph, mono, _, runtime = socket_stack
    pairs = sample_pairs_grid(graph.num_vertices, 13, 11)
    for _ in range(4):  # cycles past every replica of every shard
        np.testing.assert_array_equal(
            runtime.distances(pairs), mono.distances(pairs)
        )
    assert runtime.stats.failovers == 0


def test_runtime_rejects_monolithic_index():
    graph = grid_network(3, 3)
    index = DHLIndex.build(graph, DHLConfig(seed=0))
    with pytest.raises(TypeError):
        SocketShardRuntime(index)


def test_rejects_zero_replicas(socket_stack):
    _, _, sharded, _ = socket_stack
    with pytest.raises(ValueError, match="replicas"):
        SocketShardRuntime(sharded, replicas=0)


# ---------------------------------------------------------------------------
# update broadcast + consistency
# ---------------------------------------------------------------------------

def test_interleaved_updates_keep_replica_parity():
    """Deltas broadcast inline to every replica; queries round-robin
    over them afterwards, so a missed splice would show up as a wrong
    distance on some replica within a few batches."""
    graph = delaunay_network(160, seed=23, style="city", edge_factor=1.35)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = build_sharded(graph)
    pairs = sample_pairs_grid(graph.num_vertices)
    edges = [
        (u, v, w)
        for u, v, w in graph.edges()
        if sharded.region_of[u] == sharded.region_of[v]
    ]
    with SocketShardRuntime(sharded, replicas=2) as runtime:
        np.testing.assert_array_equal(
            runtime.distances(pairs), mono.distances(pairs)
        )
        for cycle in range(3):
            u, v, w = edges[cycle * 5]
            new = float(max(1, round(w * (cycle + 2))))
            runtime.apply_update([(u, v, new)])
            mono.update([(u, v, new)])
            for _ in range(2):  # hit both replicas of each shard
                np.testing.assert_array_equal(
                    runtime.distances(pairs), mono.distances(pairs)
                )
        stats = runtime.stats
        assert stats.delta_syncs >= 3
        assert stats.failovers == 0
        assert 0 < stats.delta_bytes


def test_stale_replica_resyncs_and_recovers(socket_stack):
    """A replica that missed an epoch broadcast refuses the batch; the
    runtime republishes the authoritative buffers and retries — the
    query succeeds and ``resyncs`` counts the heal."""
    graph, mono, _, runtime = socket_stack
    before = runtime.stats.resyncs
    runtime._epochs[0] += 1  # fabricate a missed broadcast for shard 0
    try:
        vertices = runtime.index.shard_vertices[0]
        pairs = [(int(vertices[0]), int(vertices[-1]))]
        np.testing.assert_array_equal(
            runtime.distances(pairs), mono.distances(pairs)
        )
        assert runtime.stats.resyncs > before
    finally:
        # Replicas now genuinely hold the bumped epoch; keep it.
        pass


def test_direct_index_update_forces_full_sync():
    graph = delaunay_network(140, seed=25, style="city", edge_factor=1.35)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = build_sharded(graph, k=2)
    u, v, w = next(
        (u, v, w)
        for u, v, w in graph.edges()
        if sharded.region_of[u] == sharded.region_of[v]
    )
    with SocketShardRuntime(sharded, replicas=2) as runtime:
        before = runtime.stats.full_syncs
        sharded.update([(u, v, 3.0 * w)])  # bypasses the runtime entirely
        mono.update([(u, v, 3.0 * w)])
        pairs = sample_pairs_grid(graph.num_vertices, 13, 7)
        np.testing.assert_array_equal(
            runtime.distances(pairs), mono.distances(pairs)
        )
        assert runtime.stats.full_syncs > before


# ---------------------------------------------------------------------------
# failover (acceptance criterion: replica kill loses zero requests)
# ---------------------------------------------------------------------------

def test_replica_kill_mid_replay_loses_nothing():
    """Kill one replica of every shard between batches of a replay; all
    subsequent requests fail over to the sibling and every answer still
    matches Dijkstra — zero lost or wrong requests."""
    graph = delaunay_network(150, seed=27, style="city", edge_factor=1.35)
    sharded = build_sharded(graph)
    ref = np.stack([dijkstra(graph, s) for s in range(graph.num_vertices)])
    pairs = sample_pairs_grid(graph.num_vertices, 5, 9)
    expected = np.array([ref[s][t] for s, t in pairs])
    with SocketShardRuntime(sharded, replicas=2) as runtime:
        np.testing.assert_array_equal(runtime.distances(pairs), expected)
        # Hard-kill replica 0 of every shard (simulates host loss).
        for sid in range(sharded.k):
            victim = runtime._groups[sid][0]
            victim.process.terminate()
            victim.process.join(5)
        for _ in range(3):
            np.testing.assert_array_equal(runtime.distances(pairs), expected)
        assert runtime.stats.failovers >= 1
        # The dead replicas were marked and excluded, not retried forever.
        assert all(len(runtime.alive_replicas(sid)) == 1 for sid in range(sharded.k))


def test_last_replica_loss_is_a_hard_error():
    graph = delaunay_network(120, seed=29)
    sharded = build_sharded(graph, k=2)
    with SocketShardRuntime(sharded, replicas=1) as runtime:
        pairs = sample_pairs_grid(graph.num_vertices, 9, 7)
        runtime.distances(pairs)
        for sid in range(sharded.k):
            victim = runtime._groups[sid][0]
            victim.process.terminate()
            victim.process.join(5)
        with pytest.raises(ServiceRuntimeError, match="replica"):
            runtime.distances(pairs)


# ---------------------------------------------------------------------------
# teardown hygiene + service integration
# ---------------------------------------------------------------------------

def test_close_reaps_every_replica():
    graph = delaunay_network(120, seed=31)
    runtime = SocketShardRuntime(build_sharded(graph, k=2), replicas=2)
    processes = [h.process for group in runtime._groups for h in group]
    assert len(processes) == 4
    runtime.close()
    runtime.close()  # idempotent
    assert all(not p.is_alive() for p in processes)
    with pytest.raises(ServiceRuntimeError):
        runtime.distances([(0, 1)])


def test_service_over_socket_runtime(socket_stack):
    graph, mono, _, runtime = socket_stack
    service = DistanceService(runtime, cache_capacity=16)
    pairs = sample_pairs_grid(graph.num_vertices, 17, 13)
    np.testing.assert_array_equal(service.distances(pairs), mono.distances(pairs))
    stats = service.stats()
    assert stats.backend == "socket-pool/sharded[4x2 replicas]"
    # Socket runtimes cannot certify per-pair staleness.
    downgraded = DistanceService(runtime, fine_grained_eviction=True)
    assert downgraded.fine_grained_eviction is False


# ---------------------------------------------------------------------------
# property soak: socket pool == Dijkstra under interleaved updates
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("k", [2, 4])
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=connected_graphs(min_n=6, max_n=12).flatmap(
    lambda g: update_sequences(g, max_steps=2, max_batch=3).map(lambda s: (g, s))
))
def test_socket_pool_soak_vs_dijkstra(data, k):
    graph, sequence = data
    sharded = build_sharded(graph, k=k)
    n = graph.num_vertices
    pairs = [(s, t) for s in range(n) for t in range(n)]
    with DistanceService(
        SocketShardRuntime(sharded, replicas=2), cache_capacity=256
    ) as service:
        for batch in sequence:
            service.submit_many(batch)
            out = service.distances(pairs)
            ref = np.stack(
                [dijkstra(service.index.graph, s) for s in range(n)]
            )
            np.testing.assert_array_equal(out, ref.reshape(-1))
