"""Tests for index persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import SerializationError


class TestSaveLoad:
    def test_round_trip_labels_identical(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        assert loaded.labels.equals(small_index.labels)
        assert np.array_equal(loaded.hq.tau, small_index.hq.tau)

    def test_round_trip_queries_identical(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        rng = np.random.default_rng(0)
        for _ in range(200):
            s, t = int(rng.integers(0, 300)), int(rng.integers(0, 300))
            assert loaded.distance(s, t) == small_index.distance(s, t)

    def test_round_trip_config(self, small_road, tmp_path):
        idx = DHLIndex.build(
            small_road.copy(), DHLConfig(leaf_size=5, seed=9, workers=2)
        )
        idx.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        assert loaded.config == idx.config

    def test_loaded_index_supports_updates(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        u, v, w = next(iter(loaded.graph.edges()))
        loaded.increase([(u, v, 2 * w)])
        small_index.increase([(u, v, 2 * w)])
        assert loaded.labels.equals(small_index.labels)
        loaded.hu.verify_minimum_weight_property()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "nope")

    def test_corrupt_manifest_raises(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        (tmp_path / "idx" / "manifest.json").write_text("{not json")
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "idx")

    def test_bad_version_raises(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "idx")

    def test_save_creates_expected_files(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        assert (tmp_path / "idx" / "manifest.json").exists()
        assert (tmp_path / "idx" / "arrays.npz").exists()


class TestDirectedLogicalDeletionRoundTrip:
    def test_saved_inf_arcs_reload(self, tmp_path):
        """Logically deleted arcs (weight inf) must survive save/load.

        The loader rebuilds the digraph arc by arc; add_arc rejects
        infinite weights, so deleted slots need the allocate-then-mark
        pattern the graph constructors use.
        """
        import math

        from repro.core.directed import DirectedDHLIndex
        from repro.graph.digraph import DiGraph
        from repro.graph.generators import random_connected_graph

        g = random_connected_graph(30, extra_edges=25, seed=3)
        dg = DiGraph.from_undirected(g)
        index = DirectedDHLIndex.build(dg, DHLConfig(leaf_size=4, seed=0))
        u, v, _ = next(iter(dg.arcs()))
        index.increase([(u, v, math.inf)])  # logical deletion
        index.save(tmp_path / "idx")
        loaded = DirectedDHLIndex.load(tmp_path / "idx")
        assert math.isinf(loaded.digraph.weight(u, v))
        pairs = [(s, t) for s in range(0, 30, 5) for t in range(0, 30, 7)]
        for s, t in pairs:
            assert loaded.distance(s, t) == index.distance(s, t)
