"""Tests for index persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import SerializationError


class TestSaveLoad:
    def test_round_trip_labels_identical(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        assert loaded.labels.equals(small_index.labels)
        assert np.array_equal(loaded.hq.tau, small_index.hq.tau)

    def test_round_trip_queries_identical(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        rng = np.random.default_rng(0)
        for _ in range(200):
            s, t = int(rng.integers(0, 300)), int(rng.integers(0, 300))
            assert loaded.distance(s, t) == small_index.distance(s, t)

    def test_round_trip_config(self, small_road, tmp_path):
        idx = DHLIndex.build(
            small_road.copy(), DHLConfig(leaf_size=5, seed=9, workers=2)
        )
        idx.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        assert loaded.config == idx.config

    def test_loaded_index_supports_updates(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx")
        u, v, w = next(iter(loaded.graph.edges()))
        loaded.increase([(u, v, 2 * w)])
        small_index.increase([(u, v, 2 * w)])
        assert loaded.labels.equals(small_index.labels)
        loaded.hu.verify_minimum_weight_property()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "nope")

    def test_corrupt_manifest_raises(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        (tmp_path / "idx" / "manifest.json").write_text("{not json")
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "idx")

    def test_bad_version_raises(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "idx")

    def test_save_creates_expected_files(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        assert (tmp_path / "idx" / "manifest.json").exists()
        assert (tmp_path / "idx" / "arrays.npz").exists()


class TestDirectedLogicalDeletionRoundTrip:
    def test_saved_inf_arcs_reload(self, tmp_path):
        """Logically deleted arcs (weight inf) must survive save/load.

        The loader rebuilds the digraph arc by arc; add_arc rejects
        infinite weights, so deleted slots need the allocate-then-mark
        pattern the graph constructors use.
        """
        import math

        from repro.core.directed import DirectedDHLIndex
        from repro.graph.digraph import DiGraph
        from repro.graph.generators import random_connected_graph

        g = random_connected_graph(30, extra_edges=25, seed=3)
        dg = DiGraph.from_undirected(g)
        index = DirectedDHLIndex.build(dg, DHLConfig(leaf_size=4, seed=0))
        u, v, _ = next(iter(dg.arcs()))
        index.increase([(u, v, math.inf)])  # logical deletion
        index.save(tmp_path / "idx")
        loaded = DirectedDHLIndex.load(tmp_path / "idx")
        assert math.isinf(loaded.digraph.weight(u, v))
        pairs = [(s, t) for s in range(0, 30, 5) for t in range(0, 30, 7)]
        for s, t in pairs:
            assert loaded.distance(s, t) == index.distance(s, t)


class TestCrashSafeSnapshots:
    """Atomic save + per-directory CRC manifests + verified loads."""

    def test_save_seals_snapshot_with_checksum_manifest(
        self, small_index, tmp_path
    ):
        from repro.core.serialization import verify_snapshot

        small_index.save(tmp_path / "idx")
        manifest = json.loads(
            (tmp_path / "idx" / "checksums.json").read_text()
        )
        assert "label_values.npy" in manifest["crc32"]
        assert "manifest.json" in manifest["crc32"]
        assert verify_snapshot(tmp_path / "idx") >= 4

    def test_corrupt_label_bytes_detected_on_load(self, small_index, tmp_path):
        from repro.exceptions import SnapshotCorruptionError

        small_index.save(tmp_path / "idx")
        victim = tmp_path / "idx" / "label_values.npy"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF  # bit rot in the last label value
        victim.write_bytes(blob)
        with pytest.raises(SnapshotCorruptionError, match="corrupt"):
            DHLIndex.load(tmp_path / "idx")
        # Explicit opt-out still loads (the caller owns the risk).
        DHLIndex.load(tmp_path / "idx", verify=False)

    def test_torn_snapshot_missing_file_detected(self, small_index, tmp_path):
        from repro.exceptions import SnapshotCorruptionError

        small_index.save(tmp_path / "idx")
        (tmp_path / "idx" / "label_offsets.npy").unlink()
        with pytest.raises(SnapshotCorruptionError, match="torn"):
            DHLIndex.load(tmp_path / "idx")

    def test_missing_checksum_manifest_detected(self, small_index, tmp_path):
        from repro.exceptions import SnapshotCorruptionError

        small_index.save(tmp_path / "idx")
        (tmp_path / "idx" / "checksums.json").unlink()
        with pytest.raises(SnapshotCorruptionError, match="checksums.json"):
            DHLIndex.load(tmp_path / "idx")

    def test_save_leaves_no_temp_directories(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        small_index.save(tmp_path / "idx")  # overwrite path, same guarantee
        assert [p.name for p in tmp_path.iterdir()] == ["idx"]
        DHLIndex.load(tmp_path / "idx")

    def test_failed_save_preserves_previous_snapshot(
        self, small_index, tmp_path
    ):
        from repro.core.serialization import _atomic_snapshot

        small_index.save(tmp_path / "idx")
        before = sorted(p.name for p in (tmp_path / "idx").iterdir())

        def exploding_writer(tmp):
            (tmp / "half-written.npy").write_bytes(b"partial")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            _atomic_snapshot(tmp_path / "idx", exploding_writer)
        assert sorted(p.name for p in (tmp_path / "idx").iterdir()) == before
        DHLIndex.load(tmp_path / "idx")  # still verifies and loads

    def test_sharded_snapshot_verifies_recursively(self, tmp_path):
        from repro.core.sharded import ShardedDHLIndex
        from repro.core.serialization import verify_snapshot
        from repro.exceptions import SnapshotCorruptionError
        from repro.graph.generators import delaunay_network

        graph = delaunay_network(60, seed=11)
        index = ShardedDHLIndex.build(
            graph, k=2, config=DHLConfig(seed=0), build_workers=1
        )
        index.save(tmp_path / "sharded")
        # Every component directory carries its own manifest.
        assert (tmp_path / "sharded" / "checksums.json").exists()
        assert (tmp_path / "sharded" / "shard_00" / "checksums.json").exists()
        verify_snapshot(tmp_path / "sharded")
        victim = tmp_path / "sharded" / "shard_01" / "label_values.npy"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(blob)
        with pytest.raises(SnapshotCorruptionError, match="shard_01"):
            ShardedDHLIndex.load(tmp_path / "sharded")
