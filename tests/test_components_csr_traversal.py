"""Tests for components, CSR snapshots and traversal helpers."""

from __future__ import annotations

import math

import numpy as np

from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances, bfs_order, eccentric_vertex


def two_component_graph() -> Graph:
    g = Graph(6)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(3, 4, 1.0)
    return g


class TestComponents:
    def test_connected_components(self):
        comps = connected_components(two_component_graph())
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 3]

    def test_is_connected(self, small_road):
        assert is_connected(small_road)
        assert not is_connected(two_component_graph())
        assert is_connected(Graph(0))

    def test_inf_edges_do_not_connect(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        g.set_weight(0, 1, math.inf)
        assert not is_connected(g)

    def test_largest_component(self):
        sub, mapping = largest_component(two_component_graph())
        assert sub.num_vertices == 3
        assert sorted(mapping) == [0, 1, 2]


class TestCSR:
    def test_round_trip_neighbors(self, diamond_graph):
        csr = CSRGraph.from_graph(diamond_graph)
        assert csr.num_vertices == 4
        assert csr.num_edges == 4
        ids, weights = csr.neighbors(0)
        assert set(ids.tolist()) == {1, 2}
        assert sorted(weights.tolist()) == [1.0, 2.0]
        assert csr.degree(0) == 2

    def test_to_scipy_symmetric(self, diamond_graph):
        mat = CSRGraph.from_graph(diamond_graph).to_scipy()
        dense = mat.toarray()
        assert (dense == dense.T).all()
        assert dense[0, 1] == 1.0

    def test_laplacian_rows_sum_to_zero(self, small_grid):
        lap = CSRGraph.from_graph(small_grid).laplacian()
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)


class TestTraversal:
    def test_bfs_order_covers_component(self, small_road):
        order = bfs_order(small_road, 0)
        assert len(order) == small_road.num_vertices
        assert order[0] == 0
        assert len(set(order)) == len(order)

    def test_bfs_distances_monotone_along_edges(self, small_grid):
        dist = bfs_distances(small_grid, 0)
        for u, v, _ in small_grid.edges():
            assert abs(dist[u] - dist[v]) <= 1

    def test_bfs_distances_unreachable(self):
        dist = bfs_distances(two_component_graph(), 0)
        assert dist[3] == -1 and dist[5] == -1

    def test_eccentric_vertex_is_peripheral(self, small_grid):
        """The returned vertex's eccentricity approaches the diameter."""
        v = eccentric_vertex(small_grid, 0)
        ecc_v = max(bfs_distances(small_grid, v))
        ecc_0 = max(bfs_distances(small_grid, 0))
        assert ecc_v >= ecc_0  # double sweep can only move outward
