"""Tests for dynamic maintenance (Algorithms 2-5).

The strongest check exploits determinism: label entries are interval-
subgraph distances, so after any update sequence the maintained labelling
must be *identical* to one rebuilt from scratch on the updated graph.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import MaintenanceError
from repro.labelling.maintenance import (
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
)
from tests.strategies import connected_graphs, update_sequences


def fresh_index(graph, leaf_size=4):
    return DHLIndex.build(graph.copy(), DHLConfig(leaf_size=leaf_size, seed=0))


def assert_matches_rebuild(index):
    rebuilt = DHLIndex.build(index.graph.copy(), index.config)
    assert index.labels.equals(rebuilt.labels), "maintained labels diverge"
    index.hu.verify_minimum_weight_property()


class TestShortcutMaintenance:
    def test_decrease_updates_shortcut_weights(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = next(iter(idx.graph.edges()))
        affected = maintain_shortcuts_decrease(idx.hu, [(u, v, w / 2)])
        assert affected  # at least the edge's own shortcut
        idx.hu.verify_minimum_weight_property()

    def test_increase_updates_shortcut_weights(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = next(iter(idx.graph.edges()))
        affected = maintain_shortcuts_increase(idx.hu, [(u, v, 5 * w)])
        idx.hu.verify_minimum_weight_property()
        for key, old in affected.items():
            assert idx.hu.wup[key[0]][key[1]] != old

    def test_noop_decrease(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = next(iter(idx.graph.edges()))
        assert maintain_shortcuts_decrease(idx.hu, [(u, v, w)]) == {}

    def test_decrease_rejects_increase(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = next(iter(idx.graph.edges()))
        with pytest.raises(MaintenanceError):
            maintain_shortcuts_decrease(idx.hu, [(u, v, w + 1)])

    def test_increase_rejects_decrease(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = next(iter(idx.graph.edges()))
        with pytest.raises(MaintenanceError):
            maintain_shortcuts_increase(idx.hu, [(u, v, w - 0.5)])

    def test_increase_not_realised_by_edge_is_cheap(self, diamond_graph):
        """Increasing an edge that no shortcut realises affects nothing."""
        idx = fresh_index(diamond_graph)
        # (0,2) has weight 2 but the path 0-1-3-2... make (0,2) irrelevant
        idx.increase([(0, 2, 50.0)])
        ref = dijkstra(idx.graph, 0)
        for t in range(4):
            assert idx.distance(0, t) == ref[t]


class TestLabelDecrease:
    def test_single_decrease_correct(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = list(idx.graph.edges())[7]
        stats = idx.decrease([(u, v, max(1.0, w // 3))])
        assert stats.labels_changed >= 0
        assert_matches_rebuild(idx)

    def test_batch_decrease_correct(self, small_road):
        idx = fresh_index(small_road)
        batch = [
            (u, v, max(1.0, w // 2)) for u, v, w in list(idx.graph.edges())[:40]
        ]
        idx.decrease(batch)
        assert_matches_rebuild(idx)

    def test_decrease_to_zero_weight(self, small_road):
        idx = fresh_index(small_road)
        u, v, _ = list(idx.graph.edges())[3]
        idx.decrease([(u, v, 0.0)])
        assert idx.distance(u, v) == 0.0
        assert_matches_rebuild(idx)

    def test_stats_count_changed_entries(self, small_road):
        idx = fresh_index(small_road)
        before = idx.labels.copy()
        u, v, w = list(idx.graph.edges())[11]
        stats = idx.decrease([(u, v, 1.0)])
        assert stats.labels_changed == before.diff_count(idx.labels)


class TestLabelIncrease:
    def test_single_increase_correct(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = list(idx.graph.edges())[9]
        idx.increase([(u, v, 4 * w)])
        assert_matches_rebuild(idx)

    def test_batch_increase_correct(self, small_road):
        idx = fresh_index(small_road)
        batch = [(u, v, 2 * w) for u, v, w in list(idx.graph.edges())[:40]]
        idx.increase(batch)
        assert_matches_rebuild(idx)

    def test_double_then_restore_roundtrip(self, small_road):
        """The paper's protocol: x2 then restore returns to the start."""
        idx = fresh_index(small_road)
        original = idx.labels.copy()
        batch = [(u, v, w) for u, v, w in list(idx.graph.edges())[:50]]
        idx.increase([(u, v, 2 * w) for u, v, w in batch])
        idx.decrease(batch)
        assert idx.labels.equals(original)

    def test_increase_to_infinity(self, small_road):
        """Logical deletion via the increase path."""
        idx = fresh_index(small_road)
        u, v, w = list(idx.graph.edges())[5]
        idx.increase([(u, v, math.inf)])
        assert_matches_rebuild(idx)
        ref = dijkstra(idx.graph, u)
        assert idx.distance(u, v) == ref[v]

    def test_restore_from_infinity(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = list(idx.graph.edges())[5]
        idx.increase([(u, v, math.inf)])
        idx.decrease([(u, v, w)])
        assert_matches_rebuild(idx)


class TestMixedUpdates:
    def test_update_splits_batches(self, small_road):
        idx = fresh_index(small_road)
        edges = list(idx.graph.edges())
        changes = [(edges[0][0], edges[0][1], edges[0][2] * 3)]
        changes += [(edges[1][0], edges[1][1], max(1.0, edges[1][2] - 1))]
        changes += [(edges[2][0], edges[2][1], edges[2][2])]  # no-op
        stats = idx.update(changes)
        assert stats.shortcuts_changed >= 0
        assert_matches_rebuild(idx)

    def test_invalid_weight_rejected(self, small_road):
        idx = fresh_index(small_road)
        u, v, _ = next(iter(idx.graph.edges()))
        with pytest.raises(MaintenanceError):
            idx.increase([(u, v, -3.0)])
        with pytest.raises(MaintenanceError):
            idx.decrease([(u, v, math.nan)])

    def test_wrong_direction_rejected_by_wrappers(self, small_road):
        idx = fresh_index(small_road)
        u, v, w = next(iter(idx.graph.edges()))
        with pytest.raises(MaintenanceError):
            idx.increase([(u, v, w / 2)])
        with pytest.raises(MaintenanceError):
            idx.decrease([(u, v, w * 2)])

    def test_empty_batch_is_noop(self, small_road):
        idx = fresh_index(small_road)
        before = idx.labels.copy()
        idx.update([])
        assert idx.labels.equals(before)


class TestPropertyBased:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=connected_graphs(min_n=4, max_n=18).flatmap(
        lambda g: update_sequences(g, max_steps=5).map(lambda seq: (g, seq))
    ))
    def test_random_update_sequences_match_rebuild_and_dijkstra(self, data):
        graph, sequence = data
        idx = DHLIndex.build(graph, DHLConfig(leaf_size=3, seed=0))
        for batch in sequence:
            # deduplicate edges inside a batch (API applies sequentially,
            # but the strategy may repeat an edge across entries)
            seen = {}
            for u, v, w in batch:
                seen[(min(u, v), max(u, v))] = (u, v, w)
            idx.update(list(seen.values()))
        rebuilt = DHLIndex.build(idx.graph.copy(), idx.config)
        assert idx.labels.equals(rebuilt.labels)
        n = graph.num_vertices
        ref = dijkstra(idx.graph, 0)
        for t in range(n):
            assert idx.distance(0, t) == ref[t]
