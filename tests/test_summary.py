"""Tests for the results summariser."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.summary import summarize_results


def write(path: Path, name: str, payload: dict) -> None:
    (path / f"{name}.json").write_text(json.dumps(payload))


@pytest.fixture
def results(tmp_path) -> Path:
    write(
        tmp_path,
        "table2",
        {
            "raw": {
                "NY": {
                    "batch_size": 20,
                    "batch": {
                        "DHL+": 0.002, "IncH2H+": 0.008,
                        "DHL-": 0.001, "IncH2H-": 0.004,
                        "DHL+p": 0.002, "IncH2H+p": 0.008,
                        "DHL-p": 0.001, "IncH2H-p": 0.004,
                    },
                    "single": {
                        "DHL+": 1e-4, "IncH2H+": 4e-4,
                        "DHL-": 1e-4, "IncH2H-": 3e-4,
                    },
                }
            }
        },
    )
    write(
        tmp_path,
        "table3",
        {
            "raw": {
                "NY": {
                    "query_us": {"DHL": 2.0, "IncH2H": 5.0},
                    "label_bytes": {"DHL": 100, "IncH2H": 800},
                    "shortcut_bytes": {"DHL": 50, "IncH2H": 150},
                    "construction_s": {"DHL": 1.0, "IncH2H": 2.0},
                    "affected_labels": {"DHL": [5, 100], "IncH2H": [40, 800]},
                    "height": {"DHL": 10, "IncH2H": 20},
                }
            }
        },
    )
    write(
        tmp_path,
        "verify",
        {
            "raw": {
                "NY": {
                    "static": {"DHL": 0, "IncH2H": 0, "DCH": 0},
                    "after_increase": {"DHL": 0, "IncH2H": 0, "DCH": 0},
                    "after_restore": {"DHL": 0, "IncH2H": 0, "DCH": 0},
                    "pairs_per_phase": 10,
                }
            }
        },
    )
    return tmp_path


class TestSummary:
    def test_contains_all_sections(self, results):
        text = summarize_results(results)
        assert "### Table 2" in text
        assert "### Table 3" in text
        assert "### Verification" in text

    def test_speedups_computed(self, results):
        text = summarize_results(results)
        assert "4.0x" in text  # 0.008 / 0.002
        assert "2.5x" in text  # 5.0 / 2.0 query speedup
        assert "12%" in text  # 100/800 label ratio

    def test_reproduced_verdicts(self, results):
        text = summarize_results(results)
        assert "**reproduced**" in text
        assert "Mismatches against Dijkstra" in text and "**0**" in text

    def test_missing_dir(self, tmp_path):
        assert summarize_results(tmp_path / "empty") == "(no results found)"

    def test_partial_results(self, tmp_path):
        write(tmp_path, "figure5", {"raw": {"NY": {
            "DHL+": [1.0, 1.0], "IncH2H+": [2.0, 2.0],
            "DHL-": [0.5, 0.5], "IncH2H-": [1.5, 1.5],
        }}})
        text = summarize_results(tmp_path)
        assert "Figure 5" in text
        assert "4/4" in text
