"""Tests for the DCH baseline (Section 3.1)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.baselines.dch import DCHIndex
from repro.baselines.dijkstra import dijkstra
from tests.strategies import connected_graphs, update_sequences


class TestDCHQueries:
    def test_matches_dijkstra(self, medium_random):
        dch = DCHIndex.build(medium_random.copy())
        for s in range(0, 120, 11):
            ref = dijkstra(dch.graph, s)
            for t in range(120):
                assert dch.distance(s, t) == ref[t], (s, t)

    def test_same_vertex(self, small_road):
        dch = DCHIndex.build(small_road.copy())
        assert dch.distance(9, 9) == 0.0

    def test_unreachable(self):
        from repro.graph.graph import Graph

        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        dch = DCHIndex.build(g)
        assert dch.distance(0, 3) == float("inf")

    def test_custom_order(self, medium_random):
        order = list(range(medium_random.num_vertices))
        dch = DCHIndex.build(medium_random.copy(), order=order)
        ref = dijkstra(dch.graph, 0)
        for t in range(0, 120, 17):
            assert dch.distance(0, t) == ref[t]

    def test_distances_batch(self, small_road):
        dch = DCHIndex.build(small_road.copy())
        out = dch.distances([(0, 5), (5, 0)])
        assert out[0] == out[1]  # undirected symmetry


class TestDCHUpdates:
    def test_update_cycle_preserves_correctness(self, medium_random):
        dch = DCHIndex.build(medium_random.copy())
        graph = dch.graph
        edges = list(graph.edges())[:30]
        dch.increase([(u, v, 2 * w) for u, v, w in edges])
        dch.sc.verify_minimum_weight_property()
        ref = dijkstra(graph, 4)
        for t in range(0, 120, 7):
            assert dch.distance(4, t) == ref[t]
        dch.decrease([(u, v, w) for u, v, w in edges])
        dch.sc.verify_minimum_weight_property()
        ref = dijkstra(graph, 4)
        for t in range(0, 120, 7):
            assert dch.distance(4, t) == ref[t]

    def test_mixed_update(self, small_road):
        dch = DCHIndex.build(small_road.copy())
        edges = list(dch.graph.edges())
        changes = [
            (edges[0][0], edges[0][1], edges[0][2] * 2),
            (edges[1][0], edges[1][1], max(1.0, edges[1][2] - 2)),
        ]
        affected = dch.update(changes)
        assert affected >= 1
        ref = dijkstra(dch.graph, 0)
        for t in range(0, 300, 31):
            assert dch.distance(0, t) == ref[t]

    def test_stats(self, small_road):
        dch = DCHIndex.build(small_road.copy())
        stats = dch.stats()
        assert stats["shortcuts"] >= small_road.num_edges
        assert stats["shortcut_bytes"] > 0

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=connected_graphs(min_n=4, max_n=15).flatmap(
        lambda g: update_sequences(g, max_steps=4).map(lambda seq: (g, seq))
    ))
    def test_random_updates(self, data):
        graph, sequence = data
        dch = DCHIndex.build(graph)
        for batch in sequence:
            seen = {}
            for u, v, w in batch:
                seen[(min(u, v), max(u, v))] = (u, v, w)
            dch.update(list(seen.values()))
        dch.sc.verify_minimum_weight_property()
        ref = dijkstra(graph, 0)
        for t in range(graph.num_vertices):
            assert dch.distance(0, t) == ref[t]
