"""Tests for the synthetic road-network generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.components import is_connected
from repro.graph.generators import (
    delaunay_network,
    grid_network,
    highway_network,
    random_connected_graph,
)


class TestGridNetwork:
    def test_dimensions(self):
        g = grid_network(5, 7, seed=0, diagonal_fraction=0.0)
        assert g.num_vertices == 35
        # 4-neighbour grid: r*(c-1) + c*(r-1) edges
        assert g.num_edges == 5 * 6 + 7 * 4

    def test_connected_with_diagonals(self):
        g = grid_network(8, 8, seed=1, diagonal_fraction=0.3)
        assert is_connected(g)

    def test_weights_positive_integers(self):
        g = grid_network(6, 6, seed=2)
        assert g.weights_are_integral()
        assert all(w >= 1 for _, _, w in g.edges())

    def test_coords_attached(self):
        g = grid_network(3, 4, seed=0)
        assert g.coords is not None and g.coords.shape == (12, 2)

    def test_bad_dimensions(self):
        with pytest.raises(GraphError):
            grid_network(0, 5)

    def test_reproducible(self):
        a = grid_network(6, 6, seed=9)
        b = grid_network(6, 6, seed=9)
        assert list(a.edges()) == list(b.edges())


class TestDelaunayNetwork:
    @pytest.mark.parametrize("style", ["uniform", "city", "bay", "continental"])
    def test_styles_connected(self, style):
        g = delaunay_network(250, seed=4, style=style)
        assert g.num_vertices == 250
        assert is_connected(g)
        assert g.weights_are_integral()

    def test_edge_factor_controls_density(self):
        sparse = delaunay_network(300, seed=1, edge_factor=1.0)
        dense = delaunay_network(300, seed=1, edge_factor=1.6)
        assert sparse.num_edges < dense.num_edges
        assert dense.num_edges <= round(1.6 * 300)

    def test_unknown_style_raises(self):
        with pytest.raises(GraphError):
            delaunay_network(100, style="volcano")

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            delaunay_network(2)

    def test_reproducible(self):
        a = delaunay_network(150, seed=6)
        b = delaunay_network(150, seed=6)
        assert list(a.edges()) == list(b.edges())


class TestHighwayNetwork:
    def test_structure(self):
        g = highway_network(9, 30, seed=2)
        assert g.num_vertices == 270
        assert is_connected(g)
        assert g.weights_are_integral()

    def test_highways_are_faster_per_length(self):
        g = highway_network(9, 40, seed=3, highway_speedup=4.0)
        coords = g.coords
        ratios = []
        for u, v, w in g.edges():
            length = float(np.hypot(*(coords[u] - coords[v])))
            if length > 0:
                ratios.append(w / length)
        # speedup should create a visible spread in effective speeds
        assert max(ratios) / min(ratios) > 2.0

    def test_bad_params(self):
        with pytest.raises(GraphError):
            highway_network(1, 10)


class TestRandomConnectedGraph:
    def test_connected_and_sized(self):
        g = random_connected_graph(50, extra_edges=30, seed=0)
        assert g.num_vertices == 50
        assert g.num_edges >= 49
        assert is_connected(g)

    def test_extra_edges_capped(self):
        g = random_connected_graph(4, extra_edges=100, seed=0)
        assert g.num_edges <= 6

    def test_single_vertex(self):
        g = random_connected_graph(1, seed=0)
        assert g.num_vertices == 1 and g.num_edges == 0
