"""Tests for the heap implementations."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.priority_queue import AddressableHeap, LazyHeap


class TestAddressableHeap:
    def test_push_pop_orders_by_key(self):
        h = AddressableHeap()
        for item, key in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            h.push(item, key)
        assert [h.pop() for _ in range(3)] == [("b", 1.0), ("c", 2.0), ("a", 3.0)]

    def test_decrease_key_moves_item_up(self):
        h = AddressableHeap()
        h.push("x", 10.0)
        h.push("y", 5.0)
        assert h.decrease_key("x", 1.0)
        assert h.pop() == ("x", 1.0)

    def test_decrease_key_rejects_larger_key(self):
        h = AddressableHeap()
        h.push("x", 2.0)
        assert not h.decrease_key("x", 3.0)
        assert h.key_of("x") == 2.0

    def test_push_duplicate_raises(self):
        h = AddressableHeap()
        h.push("x", 1.0)
        with pytest.raises(ValueError):
            h.push("x", 2.0)

    def test_push_or_decrease(self):
        h = AddressableHeap()
        assert h.push_or_decrease("x", 5.0)
        assert h.push_or_decrease("x", 2.0)
        assert not h.push_or_decrease("x", 9.0)
        assert h.pop() == ("x", 2.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop()

    def test_peek_does_not_remove(self):
        h = AddressableHeap()
        h.push("x", 1.0)
        assert h.peek() == ("x", 1.0)
        assert len(h) == 1

    def test_contains_and_len(self):
        h = AddressableHeap()
        h.push(4, 1.0)
        assert 4 in h and 5 not in h and len(h) == 1

    def test_ties_broken_by_insertion_order(self):
        h = AddressableHeap()
        h.push("first", 1.0)
        h.push("second", 1.0)
        assert h.pop()[0] == "first"

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 100)), max_size=120))
    def test_model_against_sorted(self, ops):
        """Dijkstra-style usage matches a reference sorted simulation."""
        h = AddressableHeap()
        best: dict[int, int] = {}
        for item, key in ops:
            if item in best:
                if key < best[item]:
                    best[item] = key
                    h.decrease_key(item, key)
            else:
                best[item] = key
                h.push(item, key)
        drained = []
        while h:
            drained.append(h.pop())
        assert sorted(drained, key=lambda kv: (kv[1], kv[0])) == sorted(
            ((i, k) for i, k in best.items()), key=lambda kv: (kv[1], kv[0])
        )
        assert [k for _, k in drained] == sorted(k for k in best.values())


class TestLazyHeap:
    def test_push_pop(self):
        h = LazyHeap()
        h.push("a", 2.0)
        h.push("b", 1.0)
        assert h.pop() == ("b", 1.0)
        assert h.pop() == ("a", 2.0)

    def test_push_lower_key_supersedes(self):
        h = LazyHeap()
        h.push("a", 5.0)
        h.push("a", 1.0)
        assert h.pop() == ("a", 1.0)
        assert not h

    def test_push_higher_key_refused_while_queued(self):
        h = LazyHeap()
        assert h.push("a", 1.0)
        assert not h.push("a", 5.0)
        assert h.pop() == ("a", 1.0)

    def test_repush_after_pop_allowed(self):
        h = LazyHeap()
        h.push("a", 1.0)
        h.pop()
        assert h.push("a", 3.0)
        assert h.pop() == ("a", 3.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            LazyHeap().pop()

    def test_drain_yields_sorted(self):
        h = LazyHeap()
        for i, key in enumerate([5.0, 1.0, 3.0, 2.0]):
            h.push(i, key)
        assert [k for _, k in h.drain()] == [1.0, 2.0, 3.0, 5.0]
        assert not h

    @given(st.lists(st.tuples(st.integers(0, 30), st.floats(0, 100)), max_size=100))
    def test_model_lowest_key_wins(self, ops):
        h = LazyHeap()
        best: dict[int, float] = {}
        for item, key in ops:
            h.push(item, key)
            if item not in best or key < best[item]:
                best[item] = key
        drained = dict(h.drain())
        assert drained == best
