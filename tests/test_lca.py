"""Tests for the Euler-tour sparse-table LCA."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.lca import EulerTourLCA


def naive_lca(parent: list[int], u: int, v: int) -> int:
    anc_u = []
    while u != -1:
        anc_u.append(u)
        u = parent[u]
    seen = set(anc_u)
    while v not in seen:
        v = parent[v]
    return v


class TestEulerTourLCA:
    def test_path_tree(self):
        parent = [-1, 0, 1, 2, 3]
        lca = EulerTourLCA(parent)
        assert lca(4, 2) == 2
        assert lca(0, 4) == 0
        assert lca(3, 3) == 3

    def test_balanced_tree(self):
        #       0
        #      / \
        #     1   2
        #    / \   \
        #   3   4   5
        parent = [-1, 0, 0, 1, 1, 2]
        lca = EulerTourLCA(parent)
        assert lca(3, 4) == 1
        assert lca(3, 5) == 0
        assert lca(4, 2) == 0
        assert lca(1, 3) == 1

    def test_forest_depths(self):
        parent = [-1, 0, -1, 2]
        lca = EulerTourLCA(parent)
        assert lca.depth[1] == 1 and lca.depth[3] == 1
        assert lca(0, 1) == 0
        assert lca(2, 3) == 2

    def test_no_root_raises(self):
        with pytest.raises(ValueError):
            EulerTourLCA([0])  # self-parent, no -1 root

    def test_deep_path_no_recursion_error(self):
        n = 5_000
        parent = [-1] + list(range(n - 1))
        lca = EulerTourLCA(parent)
        assert lca(n - 1, n // 2) == n // 2

    @given(st.integers(2, 60), st.data())
    def test_matches_naive(self, n, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        parent = [-1] + [int(rng.integers(0, i)) for i in range(1, n)]
        lca = EulerTourLCA(parent)
        for _ in range(10):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            assert lca(u, v) == naive_lca(parent, u, v)
