"""Tests for the dataset suite and DIMACS loaders."""

from __future__ import annotations

import pytest

from repro.datasets.dimacs import load_dimacs_pair
from repro.datasets.synthetic import (
    DATASETS,
    dataset_names,
    default_scale,
    load_dataset,
    suite,
)
from repro.exceptions import GraphFormatError, ReproError
from repro.graph.components import is_connected
from repro.graph.io import write_dimacs, write_dimacs_coordinates


class TestRegistry:
    def test_ten_networks_in_paper_order(self):
        names = dataset_names()
        assert len(names) == 10
        assert names[0] == "NY" and names[-1] == "EUR"
        assert names[8] == "USA"

    def test_paper_sizes_recorded(self):
        assert DATASETS["USA"].paper_vertices == 23_947_347
        assert DATASETS["EUR"].paper_vertices == 18_010_173

    def test_unknown_dataset_raises(self):
        with pytest.raises(ReproError):
            load_dataset("MARS")


class TestGeneration:
    def test_load_dataset_scaled(self):
        g = load_dataset("NY", scale=1e-3)
        assert g.num_vertices == 264
        assert is_connected(g)
        assert g.weights_are_integral()

    def test_scale_controls_size(self):
        small = load_dataset("BAY", scale=5e-4)
        large = load_dataset("BAY", scale=2e-3)
        assert small.num_vertices < large.num_vertices
        assert large.num_vertices == round(2e-3 * DATASETS["BAY"].paper_vertices)

    def test_minimum_size_floor(self):
        g = load_dataset("NY", scale=1e-9)
        assert g.num_vertices == 64

    def test_deterministic(self):
        a = load_dataset("COL", scale=1e-3)
        b = load_dataset("COL", scale=1e-3)
        assert list(a.edges()) == list(b.edges())

    def test_suite_subset(self):
        graphs = suite(["NY", "BAY"], scale=1e-3)
        assert set(graphs) == {"NY", "BAY"}

    def test_env_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        assert default_scale() == pytest.approx(2e-3)
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ReproError):
            default_scale()

    def test_edge_density_road_like(self):
        g = load_dataset("FLA", scale=1e-3)
        ratio = g.num_edges / g.num_vertices
        assert 1.0 <= ratio <= 1.5  # undirected |E|/|V| of road networks


class TestDimacsLoader:
    def test_load_pair(self, small_road, tmp_path):
        write_dimacs(small_road, tmp_path / "g.gr")
        write_dimacs_coordinates(
            (small_road.coords * 1_000_000).astype(int), tmp_path / "g.co"
        )
        loaded = load_dimacs_pair(tmp_path / "g.gr", tmp_path / "g.co")
        assert loaded.num_vertices == small_road.num_vertices
        assert loaded.coords is not None

    def test_load_without_coords(self, small_road, tmp_path):
        write_dimacs(small_road, tmp_path / "g.gr")
        loaded = load_dimacs_pair(tmp_path / "g.gr")
        assert loaded.coords is None

    def test_coordinate_mismatch_raises(self, small_road, tmp_path):
        write_dimacs(small_road, tmp_path / "g.gr")
        write_dimacs_coordinates(
            small_road.coords[:10].astype(int), tmp_path / "g.co"
        )
        with pytest.raises(GraphFormatError):
            load_dimacs_pair(tmp_path / "g.gr", tmp_path / "g.co")
