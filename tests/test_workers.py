"""The multiprocess serving runtime: shared buffers, scheduling, hygiene.

The load-bearing checks: the worker-pool runtime must answer exactly
what the in-process runtime (and Dijkstra) answers, across interleaved
update batches synced to workers as shared-memory *deltas* — the same
long-lived processes, no re-pickle, no whole-buffer copies — and
``close()`` must leave no worker process and no ``/dev/shm`` segment
behind, even when construction fails halfway.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.core.sharded import ShardedDHLIndex
from repro.exceptions import ServiceRuntimeError, WorkerEpochError
from repro.graph.generators import delaunay_network, grid_network
from repro.observability import NULL_OBSERVABILITY, Observability
from repro.service.runtime import InProcessRuntime
from repro.service.service import DistanceService
from repro.service.workers import ShardWorkerRuntime
from repro.service.workload import commute_traffic, replay
from tests.strategies import connected_graphs, update_sequences


def build_sharded(graph, k=4):
    return ShardedDHLIndex.build(
        graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=1
    )


@pytest.fixture(scope="module")
def worker_stack():
    """One road network served three ways: mono, sharded, worker pool."""
    graph = delaunay_network(240, seed=17, style="city", edge_factor=1.35)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = build_sharded(graph)
    runtime = ShardWorkerRuntime(sharded)
    yield graph, mono, sharded, runtime
    runtime.close()


def sample_pairs_grid(n, step_s=7, step_t=5):
    return [(s, t) for s in range(0, n, step_s) for t in range(0, n, step_t)]


# ---------------------------------------------------------------------------
# query parity
# ---------------------------------------------------------------------------

def test_worker_pool_matches_monolithic(worker_stack):
    graph, mono, _, runtime = worker_stack
    pairs = sample_pairs_grid(graph.num_vertices)
    np.testing.assert_array_equal(runtime.distances(pairs), mono.distances(pairs))
    # Single-pair path, self pairs, and the service wrapper agree too.
    assert runtime.distance(3, 3) == 0.0
    assert runtime.distance(0, graph.num_vertices - 1) == mono.distance(
        0, graph.num_vertices - 1
    )


def test_worker_pool_matches_in_process_runtime(worker_stack):
    graph, _, sharded, runtime = worker_stack
    pairs = sample_pairs_grid(graph.num_vertices, 11, 3)
    in_process = InProcessRuntime(sharded)
    np.testing.assert_array_equal(
        runtime.distances(pairs), in_process.distances(pairs)
    )


def test_single_shard_runtime_has_no_fans():
    graph = grid_network(6, 6)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = build_sharded(graph, k=1)
    with ShardWorkerRuntime(sharded) as runtime:
        pairs = sample_pairs_grid(graph.num_vertices, 3, 2)
        np.testing.assert_array_equal(
            runtime.distances(pairs), mono.distances(pairs)
        )
        assert runtime.stats.cross_pairs == 0


def test_runtime_rejects_monolithic_index():
    graph = grid_network(3, 3)
    index = DHLIndex.build(graph, DHLConfig(seed=0))
    with pytest.raises(TypeError):
        ShardWorkerRuntime(index)


# ---------------------------------------------------------------------------
# the shared-buffer lifecycle (acceptance satellite)
# ---------------------------------------------------------------------------

def test_buffer_lifecycle_delta_republish_parity():
    """export → attach in spawned workers → parity → maintenance +
    delta re-publish → parity, for >= 3 flush cycles on the *same*
    worker processes with no whole-buffer republish."""
    graph = delaunay_network(200, seed=3, style="city", edge_factor=1.35)
    mono = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    sharded = build_sharded(graph)
    pairs = sample_pairs_grid(graph.num_vertices)
    edges = [
        (u, v, w)
        for u, v, w in graph.edges()
        if sharded.region_of[u] == sharded.region_of[v]
    ]
    with DistanceService(ShardWorkerRuntime(sharded)) as service:
        runtime = service.runtime
        pids = [handle.process.pid for handle in runtime._workers]
        values_bytes = sum(
            handle.values_seg.array.nbytes for handle in runtime._workers
        )
        np.testing.assert_array_equal(service.distances(pairs), mono.distances(pairs))
        for cycle in range(3):
            u, v, w = edges[cycle * 5]
            new = float(max(1, round(w * (cycle + 2))))
            service.submit(u, v, new)
            mono.update([(u, v, new)])
            np.testing.assert_array_equal(
                service.distances(pairs), mono.distances(pairs)
            )
        stats = runtime.stats
        assert stats.delta_syncs >= 3
        assert stats.republishes == 0 and stats.full_syncs == 0
        # Deltas stayed deltas: far less traffic than one full publish
        # per flush would have cost.
        assert 0 < stats.delta_bytes < values_bytes
        assert [h.process.pid for h in runtime._workers] == pids
        assert all(h.process.is_alive() for h in runtime._workers)


def test_direct_index_update_forces_full_sync(worker_stack):
    graph, mono, sharded, runtime = worker_stack
    u, v, w = next(
        (u, v, w)
        for u, v, w in graph.edges()
        if sharded.region_of[u] == sharded.region_of[v]
    )
    before = runtime.stats.full_syncs
    sharded.update([(u, v, 3.0 * w)])  # bypasses the runtime entirely
    mono.update([(u, v, 3.0 * w)])
    try:
        pairs = sample_pairs_grid(graph.num_vertices, 13, 7)
        np.testing.assert_array_equal(
            runtime.distances(pairs), mono.distances(pairs)
        )
        assert runtime.stats.full_syncs > before
    finally:
        runtime.apply_update([(u, v, w)])
        mono.update([(u, v, w)])


def test_worker_refuses_newer_epoch(worker_stack):
    graph, _, _, runtime = worker_stack
    # Fabricate a missed broadcast: the parent believes shard 0 should
    # hold a newer epoch than was ever shipped to it.
    runtime._epochs[0] += 1
    try:
        vertices = runtime.index.shard_vertices[0]
        s, t = int(vertices[0]), int(vertices[-1])
        with pytest.raises(WorkerEpochError, match="missed epoch broadcast"):
            runtime.distances([(s, t)])
    finally:
        runtime._epochs[0] -= 1


# ---------------------------------------------------------------------------
# teardown hygiene
# ---------------------------------------------------------------------------

def segment_names(runtime):
    return [
        segment.shm.name
        for handle in runtime._workers
        for segment in handle.segments
    ]


def assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_close_joins_workers_and_unlinks_segments():
    graph = delaunay_network(120, seed=5)
    runtime = ShardWorkerRuntime(build_sharded(graph, k=2))
    names = segment_names(runtime)
    assert len(names) == 4  # values + offsets per shard
    processes = [handle.process for handle in runtime._workers]
    runtime.close()
    runtime.close()  # idempotent
    assert all(not p.is_alive() for p in processes)
    assert_unlinked(names)
    with pytest.raises(ServiceRuntimeError):
        runtime.distances([(0, 1)])


def test_close_survives_dead_worker():
    graph = delaunay_network(120, seed=6)
    runtime = ShardWorkerRuntime(build_sharded(graph, k=2))
    names = segment_names(runtime)
    runtime._workers[0].process.terminate()
    runtime._workers[0].process.join(5)
    runtime.close()
    assert_unlinked(names)


def test_partial_startup_unlinks_created_segments(monkeypatch):
    """A failure while bringing up worker N must not leak the segments
    (or processes) of workers 0..N that already started."""
    import repro.core.sharded as sharded_mod
    import repro.service.workers as workers_mod

    created: list[str] = []
    original_publish = workers_mod._publish_array

    def tracking_publish(array, dtype):
        segment = original_publish(array, dtype)
        created.append(segment.shm.name)
        return segment

    original_payload = sharded_mod.ShardedDHLIndex.shard_worker_payload

    def failing_payload(self, sid):
        if sid == 1:
            raise RuntimeError("injected startup failure")
        return original_payload(self, sid)

    monkeypatch.setattr(workers_mod, "_publish_array", tracking_publish)
    monkeypatch.setattr(
        sharded_mod.ShardedDHLIndex, "shard_worker_payload", failing_payload
    )
    graph = delaunay_network(120, seed=7)
    with pytest.raises(RuntimeError, match="injected startup failure"):
        ShardWorkerRuntime(build_sharded(graph, k=2))
    assert created  # the tracker saw segments being published
    assert_unlinked(created)


def test_service_context_manager_closes_on_exception():
    graph = delaunay_network(120, seed=8)
    runtime = ShardWorkerRuntime(build_sharded(graph, k=2))
    names = segment_names(runtime)
    with pytest.raises(ValueError, match="boom"):
        with DistanceService(runtime) as service:
            service.distance(0, 1)
            raise ValueError("boom")
    assert_unlinked(names)


# ---------------------------------------------------------------------------
# trace stitching across worker pipes
# ---------------------------------------------------------------------------

def traced_service(runtime):
    """Full-rate tracing, cache off so every query reaches the workers."""
    return DistanceService(
        runtime,
        cache_capacity=1,
        observability=Observability.enabled(trace_sample_rate=1.0),
    )


def cross_shard_pair(runtime):
    vertices = runtime.index.shard_vertices
    return int(vertices[0][0]), int(vertices[1][0])


def test_worker_spans_stitched_into_parent_trace(worker_stack):
    graph, _, _, runtime = worker_stack
    service = traced_service(runtime)
    try:
        s, t = cross_shard_pair(runtime)
        service.distances([(s, t), (t, s)])
        trace = service.last_trace()
        assert trace.name == "distances"
        runtime_span = next(
            child for child in trace.children if child.name == "runtime"
        )
        workers = [
            child
            for child in runtime_span.children
            if child.name.startswith("worker[")
        ]
        assert workers  # cross-shard pairs fan out to shard workers
        for worker_span in workers:
            assert worker_span.seconds > 0.0
            # The subtree under worker[sid] was measured in the worker
            # *process* and shipped back over the result pipe.
            compute = next(
                child
                for child in worker_span.children
                if child.name == "shard_compute"
            )
            assert compute.children  # per-sub-batch kernel spans
        text = trace.format()
        assert "shard_compute" in text and "min_plus_combine" in text
    finally:
        runtime.observability = NULL_OBSERVABILITY


def test_trace_survives_worker_epoch_refusal(worker_stack):
    graph, _, _, runtime = worker_stack
    service = traced_service(runtime)
    try:
        s, t = cross_shard_pair(runtime)
        runtime._epochs[0] += 1
        try:
            with pytest.raises(WorkerEpochError, match="missed epoch broadcast"):
                service.distances([(s, t)])
        finally:
            runtime._epochs[0] -= 1
        # The refused request still produced a finished trace with the
        # round-trip span of the worker that refused.
        refused = service.last_trace()
        assert refused is not None and refused.name == "distances"
        assert "worker[0]" in refused.format()
        # The pool recovers and keeps stitching afterwards.
        service.distances([(s, t)])
        assert "shard_compute" in service.last_trace().format()
    finally:
        runtime.observability = NULL_OBSERVABILITY


def test_trace_stitching_survives_republish():
    """A republished label buffer (fresh segments, worker re-attach)
    must not break span shipping on the same pipe."""
    graph = delaunay_network(140, seed=11)
    runtime = ShardWorkerRuntime(build_sharded(graph, k=2))
    with traced_service(runtime) as service:
        s, t = cross_shard_pair(runtime)
        service.distances([(s, t)])
        handle = runtime._workers[0]
        labels = runtime.index.shards[0].labels
        runtime._epochs[0] += 1
        handle.republish(labels, runtime._epochs[0])
        # A fresh pair (the cache canonicalises symmetric pairs) so the
        # query crosses the re-attached segments.
        vertices = runtime.index.shard_vertices
        pair = (int(vertices[0][1]), int(vertices[1][1]))
        after = service.distances([pair])
        np.testing.assert_array_equal(after, runtime.index.distances([pair]))
        text = service.last_trace().format()
        assert "worker[0]" in text and "shard_compute" in text


def test_untraced_requests_ship_no_spans(worker_stack):
    """With the default null stack the compute message asks for no
    trace and the reply carries none (the pre-observability protocol)."""
    graph, _, _, runtime = worker_stack
    service = DistanceService(runtime, cache_capacity=1)
    s, t = cross_shard_pair(runtime)
    service.distances([(s, t)])
    assert service.last_trace() is None


# ---------------------------------------------------------------------------
# service integration + backend reporting
# ---------------------------------------------------------------------------

def test_service_replay_matches_in_process(worker_stack):
    graph, _, _, _ = worker_stack
    sharded = build_sharded(graph)
    events = commute_traffic(
        graph,
        sharded.region_of,
        boundary=sharded.partition.boundary,
        query_batches=5,
        batch_size=50,
        seed=9,
    )
    in_process_report = replay(DistanceService(sharded), list(events))
    with DistanceService(ShardWorkerRuntime(sharded)) as service:
        worker_report = replay(service, list(events))
    assert round(worker_report.distance_checksum, 6) == round(
        in_process_report.distance_checksum, 6
    )


def test_stats_report_backend_kind(worker_stack):
    graph, mono, sharded, runtime = worker_stack
    assert DistanceService(mono).stats().backend == "in-process/monolithic"
    assert DistanceService(sharded).stats().backend == "in-process/sharded"
    service = DistanceService(runtime)
    stats = service.stats()
    assert stats.backend == "worker-pool/sharded[4 workers]"
    assert "worker-pool/sharded[4 workers]" in stats.summary()
    # Worker-pool runtimes cannot certify per-pair staleness.
    downgraded = DistanceService(runtime, fine_grained_eviction=True)
    assert downgraded.fine_grained_eviction is False


# ---------------------------------------------------------------------------
# property soak: worker pool == Dijkstra under interleaved updates
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("k", [2, 4])
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=connected_graphs(min_n=6, max_n=14).flatmap(
    lambda g: update_sequences(g, max_steps=3, max_batch=3).map(lambda s: (g, s))
))
def test_worker_pool_soak_vs_dijkstra(data, k):
    graph, sequence = data
    sharded = build_sharded(graph, k=k)
    n = graph.num_vertices
    pairs = [(s, t) for s in range(n) for t in range(n)]
    with DistanceService(ShardWorkerRuntime(sharded), cache_capacity=256) as service:
        for batch in sequence:
            service.submit_many(batch)
            out = service.distances(pairs)
            ref = np.stack(
                [dijkstra(service.index.graph, s) for s in range(n)]
            )
            np.testing.assert_array_equal(out, ref.reshape(-1))
        assert service.runtime.stats.republishes == 0
