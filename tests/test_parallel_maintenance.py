"""Tests for the parallel maintenance variants (Algorithms 6/7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.labelling.maintenance import (
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
)
from repro.labelling.parallel import (
    apply_decrease_parallel,
    apply_increase_parallel,
    maintain_labels_decrease_parallel,
    maintain_labels_increase_parallel,
)


def make_pair(graph):
    """Two identical indexes over copies of *graph*."""
    a = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=4, seed=0))
    b = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=4, seed=0))
    assert a.labels.equals(b.labels)
    return a, b


class TestColumnPartitioning:
    @pytest.mark.parametrize("workers", [None, 1, 3])
    def test_decrease_matches_sequential(self, small_road, workers):
        seq, par = make_pair(small_road)
        batch = [(u, v, max(1.0, w // 2)) for u, v, w in list(small_road.edges())[:30]]
        seq.decrease(batch)
        apply_decrease_parallel(par.hu, par.labels, batch, workers=workers)
        assert seq.labels.equals(par.labels)

    @pytest.mark.parametrize("workers", [None, 1, 3])
    def test_increase_matches_sequential(self, small_road, workers):
        seq, par = make_pair(small_road)
        batch = [(u, v, 3 * w) for u, v, w in list(small_road.edges())[:30]]
        seq.increase(batch)
        apply_increase_parallel(par.hu, par.labels, batch, workers=workers)
        assert seq.labels.equals(par.labels)

    def test_interleaved_parallel_sequence(self, small_road):
        seq, par = make_pair(small_road)
        rng = np.random.default_rng(3)
        edges = list(small_road.edges())
        for _ in range(6):
            picks = rng.choice(len(edges), size=5, replace=False)
            inc = [(edges[p][0], edges[p][1], 2 * edges[p][2]) for p in picks]
            dec = [(u, v, w / 2) for u, v, w in inc]
            seq.increase(inc)
            seq.decrease(dec)
            par.increase(inc, workers=4)
            par.decrease(dec, workers=4)
        assert seq.labels.equals(par.labels)

    def test_stats_equivalent(self, small_road):
        """Parallel and sequential must report the same |L-delta|."""
        seq, par = make_pair(small_road)
        batch = [(u, v, 2 * w) for u, v, w in list(small_road.edges())[:25]]
        s1 = seq.increase(batch)
        affected = maintain_shortcuts_increase(par.hu, batch)
        s2 = maintain_labels_increase_parallel(par.hu, par.labels, affected)
        assert s1.labels_changed == s2.labels_changed
        assert s1.shortcuts_changed == s2.shortcuts_changed

    def test_decrease_stats_equivalent(self, small_road):
        seq, par = make_pair(small_road)
        batch = [(u, v, max(1.0, w - 5)) for u, v, w in list(small_road.edges())[:25]]
        s1 = seq.decrease(batch)
        affected = maintain_shortcuts_decrease(par.hu, batch)
        s2 = maintain_labels_decrease_parallel(par.hu, par.labels, affected)
        assert s1.labels_changed == s2.labels_changed

    def test_workers_via_config(self, small_road):
        idx = DHLIndex.build(
            small_road.copy(), DHLConfig(leaf_size=4, seed=0, workers=2)
        )
        batch = [(u, v, 2 * w) for u, v, w in list(small_road.edges())[:10]]
        idx.increase(batch)  # uses config workers
        rebuilt = idx.rebuild()
        assert idx.labels.equals(rebuilt.labels)
