"""Tests for the H2H index and IncH2H dynamic maintenance."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.baselines.h2h import H2HIndex
from repro.baselines.inch2h import IncH2HIndex
from tests.strategies import connected_graphs, update_sequences


class TestH2HStructure:
    def test_tree_parent_is_lowest_ranked_up_neighbor(self, medium_random):
        h2h = H2HIndex.build(medium_random.copy())
        for v in range(medium_random.num_vertices):
            if len(h2h.sc.up[v]):
                expected = min(h2h.sc.up[v], key=lambda u: h2h.sc.rank[u])
                assert h2h.parent[v] == expected
            else:
                assert h2h.parent[v] == -1

    def test_bag_vertices_are_ancestors(self, medium_random):
        """The tree-decomposition property: N+(v) lie on v's root path."""
        h2h = H2HIndex.build(medium_random.copy())
        for v in range(medium_random.num_vertices):
            ancestors = set(h2h.anc[v, : h2h.depth[v] + 1].tolist())
            for w in h2h.sc.up[v]:
                assert w in ancestors, (v, w)

    def test_ancestor_arrays_consistent(self, medium_random):
        h2h = H2HIndex.build(medium_random.copy())
        for v in range(medium_random.num_vertices):
            dv = int(h2h.depth[v])
            assert h2h.anc[v, dv] == v
            p = int(h2h.parent[v])
            if p >= 0:
                assert h2h.anc[v, dv - 1] == p

    def test_distance_arrays_are_true_distances(self, medium_random):
        h2h = H2HIndex.build(medium_random.copy())
        for v in range(0, medium_random.num_vertices, 17):
            ref = dijkstra(medium_random, v)
            for j in range(int(h2h.depth[v]) + 1):
                a = int(h2h.anc[v, j])
                assert h2h.dist[v, j] == ref[a], (v, j, a)

    def test_positions_cover_bag(self, medium_random):
        h2h = H2HIndex.build(medium_random.copy())
        for v in range(medium_random.num_vertices):
            depths = {int(h2h.depth[w]) for w in h2h.sc.up[v]}
            depths.add(int(h2h.depth[v]))
            assert set(h2h.pos[v].tolist()) == depths

    def test_sizes(self, medium_random):
        h2h = H2HIndex.build(medium_random.copy())
        assert h2h.label_entries() == int((h2h.depth + 1).sum())
        assert h2h.memory_bytes() > 0
        assert h2h.height == int(h2h.depth.max()) + 1


class TestH2HQueries:
    def test_matches_dijkstra(self, medium_random):
        h2h = H2HIndex.build(medium_random.copy())
        for s in range(0, 120, 9):
            ref = dijkstra(medium_random, s)
            for t in range(120):
                assert h2h.distance(s, t) == ref[t], (s, t)

    def test_same_vertex(self, small_road):
        h2h = H2HIndex.build(small_road.copy())
        assert h2h.distance(3, 3) == 0.0

    def test_disconnected(self):
        from repro.graph.graph import Graph

        g = Graph(4)
        g.add_edge(0, 1, 2.0)
        g.add_edge(2, 3, 2.0)
        h2h = H2HIndex.build(g)
        assert math.isinf(h2h.distance(0, 2))
        assert h2h.distance(2, 3) == 2.0


class TestIncH2H:
    def test_increase_then_queries_exact(self, medium_random):
        idx = IncH2HIndex.build(medium_random.copy())
        edges = list(idx.graph.edges())[:25]
        idx.increase([(u, v, 2 * w) for u, v, w in edges])
        for s in range(0, 120, 13):
            ref = dijkstra(idx.graph, s)
            for t in range(120):
                assert idx.distance(s, t) == ref[t], (s, t)

    def test_decrease_then_queries_exact(self, medium_random):
        idx = IncH2HIndex.build(medium_random.copy())
        edges = list(idx.graph.edges())[:25]
        idx.decrease([(u, v, max(1.0, w // 2)) for u, v, w in edges])
        for s in range(0, 120, 13):
            ref = dijkstra(idx.graph, s)
            for t in range(120):
                assert idx.distance(s, t) == ref[t], (s, t)

    def test_double_restore_returns_to_start(self, medium_random):
        idx = IncH2HIndex.build(medium_random.copy())
        before = idx.dist.copy()
        edges = list(idx.graph.edges())[:30]
        idx.increase([(u, v, 2 * w) for u, v, w in edges])
        idx.decrease([(u, v, w) for u, v, w in edges])
        assert np.array_equal(
            np.nan_to_num(before, posinf=-1), np.nan_to_num(idx.dist, posinf=-1)
        )

    def test_labels_match_rebuild_after_updates(self, medium_random):
        idx = IncH2HIndex.build(medium_random.copy())
        edges = list(idx.graph.edges())
        idx.increase([(u, v, 3 * w) for u, v, w in edges[5:20]])
        idx.decrease([(u, v, max(1.0, w - 3)) for u, v, w in edges[10:30]])
        rebuilt = H2HIndex.build(idx.graph.copy(), order=idx.sc.order.tolist())
        assert np.array_equal(
            np.nan_to_num(idx.dist, posinf=-1),
            np.nan_to_num(rebuilt.dist, posinf=-1),
        )

    def test_deletion_via_infinite_weight(self, medium_random):
        idx = IncH2HIndex.build(medium_random.copy())
        u, v, w = list(idx.graph.edges())[4]
        idx.increase([(u, v, math.inf)])
        ref = dijkstra(idx.graph, u)
        assert idx.distance(u, v) == ref[v]
        idx.decrease([(u, v, w)])
        ref = dijkstra(idx.graph, u)
        assert idx.distance(u, v) == ref[v]

    def test_mixed_update_api(self, small_road):
        idx = IncH2HIndex.build(small_road.copy())
        edges = list(idx.graph.edges())
        stats = idx.update(
            [
                (edges[0][0], edges[0][1], 2 * edges[0][2]),
                (edges[1][0], edges[1][1], max(1.0, edges[1][2] - 1)),
            ]
        )
        assert stats.shortcuts_changed >= 0
        ref = dijkstra(idx.graph, 0)
        for t in range(0, 300, 37):
            assert idx.distance(0, t) == ref[t]

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=connected_graphs(min_n=4, max_n=14).flatmap(
        lambda g: update_sequences(g, max_steps=4).map(lambda seq: (g, seq))
    ))
    def test_random_update_sequences(self, data):
        graph, sequence = data
        idx = IncH2HIndex.build(graph)
        for batch in sequence:
            seen = {}
            for u, v, w in batch:
                seen[(min(u, v), max(u, v))] = (u, v, w)
            idx.update(list(seen.values()))
        ref = dijkstra(graph, 0)
        for t in range(graph.num_vertices):
            assert idx.distance(0, t) == ref[t]
