"""Tests for the directed extension (Section 8)."""

from __future__ import annotations

import heapq
import math

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.directed import DirectedDHLIndex
from repro.core.index import DHLIndex
from repro.exceptions import MaintenanceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_connected_graph


def directed_dijkstra(dg: DiGraph, source: int) -> list[float]:
    dist = [math.inf] * dg.num_vertices
    dist[source] = 0.0
    heap = [(0.0, source)]
    seen: set[int] = set()
    while heap:
        d, v = heapq.heappop(heap)
        if v in seen:
            continue
        seen.add(v)
        for u, w in dg.out_neighbors(v).items():
            if d + w < dist[u]:
                dist[u] = d + w
                heapq.heappush(heap, (d + w, u))
    return dist


@pytest.fixture
def asym_digraph() -> DiGraph:
    g = random_connected_graph(60, extra_edges=50, seed=8)
    dg = DiGraph.from_undirected(g)
    rng = np.random.default_rng(4)
    for u, v, w in list(dg.arcs())[: dg.num_arcs // 2]:
        dg.set_weight(u, v, float(w + rng.integers(0, 25)))
    return dg


class TestDirectedStatic:
    def test_matches_directed_dijkstra(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        for s in range(0, 60, 6):
            ref = directed_dijkstra(asym_digraph, s)
            for t in range(60):
                assert idx.distance(s, t) == ref[t], (s, t)

    def test_asymmetry_visible(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        found = any(
            idx.distance(s, t) != idx.distance(t, s)
            for s in range(10)
            for t in range(10, 20)
        )
        assert found, "expected at least one asymmetric pair"

    def test_symmetric_digraph_equals_undirected_dhl(self):
        g = random_connected_graph(50, extra_edges=40, seed=12)
        dg = DiGraph.from_undirected(g)
        directed = DirectedDHLIndex.build(dg, DHLConfig(leaf_size=4, seed=0))
        undirected = DHLIndex.build(g.copy(), DHLConfig(leaf_size=4, seed=0))
        for s in range(0, 50, 5):
            for t in range(50):
                assert directed.distance(s, t) == undirected.distance(s, t)

    def test_batch_distances(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        out = idx.distances([(0, 5), (5, 0), (3, 3)])
        assert out[2] == 0.0
        assert out[0] == idx.distance(0, 5)

    def test_stats(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        stats = idx.stats()
        assert stats.label_entries == (
            idx.labels_out.num_entries + idx.labels_in.num_entries
        )
        assert stats.num_shortcuts > 0


class TestDirectedDynamic:
    def test_increase_decrease_match_dijkstra(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        rng = np.random.default_rng(17)
        arcs = list(asym_digraph.arcs())
        for _ in range(12):
            picks = rng.choice(len(arcs), size=3, replace=False)
            changes = []
            for p in picks:
                u, v, _ = arcs[p]
                cur = asym_digraph.weight(u, v)
                if rng.random() < 0.5:
                    changes.append((u, v, float(cur + rng.integers(1, 30))))
                else:
                    changes.append(
                        (u, v, float(max(1, int(cur) - int(rng.integers(1, 30)))))
                    )
            idx.update(changes)
            arcs = list(asym_digraph.arcs())
        for s in range(0, 60, 9):
            ref = directed_dijkstra(asym_digraph, s)
            for t in range(60):
                assert idx.distance(s, t) == ref[t], (s, t)

    def test_one_direction_update_leaves_other_exact(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        u, v, w = next(iter(asym_digraph.arcs()))
        idx.increase([(u, v, 4 * w)])
        ref_fwd = directed_dijkstra(asym_digraph, u)
        assert idx.distance(u, v) == ref_fwd[v]
        # the reverse direction must still be exact too
        ref_rev = directed_dijkstra(asym_digraph, v)
        assert idx.distance(v, u) == ref_rev[u]

    def test_wrong_direction_rejected(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4))
        u, v, w = next(iter(asym_digraph.arcs()))
        with pytest.raises(MaintenanceError):
            idx.increase([(u, v, w / 2)])
        with pytest.raises(MaintenanceError):
            idx.decrease([(u, v, w * 2)])

    def test_parallel_workers_match_sequential(self, asym_digraph):
        # build over independent copies: an index owns its graph
        seq = DirectedDHLIndex.build(
            asym_digraph.copy(), DHLConfig(leaf_size=4, seed=0)
        )
        par = DirectedDHLIndex.build(
            asym_digraph.copy(), DHLConfig(leaf_size=4, seed=0)
        )
        arcs = list(asym_digraph.arcs())[:15]
        inc = [(u, v, 2 * w) for u, v, w in arcs]
        dec = [(u, v, w) for u, v, w in arcs]
        seq.increase(inc)
        par.increase(inc, workers=3)
        assert seq.labels_out.equals(par.labels_out)
        assert seq.labels_in.equals(par.labels_in)
        seq.decrease(dec)
        par.decrease(dec, workers=3)
        assert seq.labels_out.equals(par.labels_out)
        assert seq.labels_in.equals(par.labels_in)

    def test_maintained_equals_rebuilt(self, asym_digraph):
        idx = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4, seed=0))
        arcs = list(asym_digraph.arcs())[:20]
        idx.increase([(u, v, 2 * w) for u, v, w in arcs])
        idx.decrease([(u, v, w) for u, v, w in arcs])
        rebuilt = DirectedDHLIndex.build(asym_digraph, DHLConfig(leaf_size=4, seed=0))
        assert idx.labels_out.equals(rebuilt.labels_out)
        assert idx.labels_in.equals(rebuilt.labels_in)
