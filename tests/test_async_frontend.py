"""The asyncio micro-batching frontend: folding, shedding, ordering.

The frontend's contract: concurrent ``await``-style calls fold into
few scheduler batches (the whole point — per-call dispatch would pay a
full runtime round trip per pair), every admitted request is answered
with exactly what the synchronous service would say, requests past the
queue-depth limit are shed with
:class:`~repro.exceptions.ServiceOverloadError` rather than queued, and
updates stay strictly ordered with the queries around them.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import ServiceOverloadError
from repro.graph.generators import grid_network
from repro.observability import Observability
from repro.service.async_frontend import AsyncDistanceService
from repro.service.service import DistanceService


@pytest.fixture(scope="module")
def small_graph():
    return grid_network(6, 6)


@pytest.fixture()
def service(small_graph):
    with DistanceService(
        DHLIndex.build(small_graph.copy(), DHLConfig(seed=0))
    ) as svc:
        yield svc


class SlowService:
    """Delegating wrapper whose query path takes a fixed beat — lets a
    test *guarantee* a backlog builds while a batch is executing."""

    def __init__(self, inner, delay: float = 0.03):
        self._inner = inner
        self.delay = delay
        self.observability = inner.observability

    def distances(self, pairs):
        time.sleep(self.delay)
        return self._inner.distances(pairs)

    def submit_many(self, changes):
        self._inner.submit_many(changes)

    def flush(self):
        return self._inner.flush()


# ---------------------------------------------------------------------------
# correctness: async answers == sync answers
# ---------------------------------------------------------------------------

def test_results_match_sync_service(service, small_graph):
    n = small_graph.num_vertices
    pairs = [(s, t) for s in range(0, n, 3) for t in range(0, n, 4)]
    expected = service.distances(pairs)

    async def scenario():
        async with AsyncDistanceService(service) as frontend:
            singles = await asyncio.gather(
                *(frontend.distance(s, t) for s, t in pairs)
            )
            batched = await frontend.distances(pairs)
            return singles, batched

    singles, batched = asyncio.run(scenario())
    np.testing.assert_array_equal(np.array(singles), expected)
    np.testing.assert_array_equal(batched, expected)


def test_empty_batch_short_circuits(service):
    async def scenario():
        async with AsyncDistanceService(service) as frontend:
            out = await frontend.distances([])
            assert out.size == 0
            assert frontend.stats.offered_requests == 0

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# micro-batching
# ---------------------------------------------------------------------------

def test_concurrent_calls_fold_into_few_batches(service):
    """64 concurrent single-pair awaits must not cost 64 scheduler
    batches: whatever queues while a batch executes folds into one."""
    slow = SlowService(service)

    async def scenario():
        async with AsyncDistanceService(slow) as frontend:
            await asyncio.gather(
                *(frontend.distance(s % 30, s % 30 + 1) for s in range(64))
            )
            return frontend.stats

    stats = asyncio.run(scenario())
    assert stats.answered_requests == 64
    assert stats.batches <= 32  # acceptance: >= 2x folding vs serial
    assert stats.merge_ratio >= 2.0
    assert stats.max_merged >= 2
    assert stats.batched_pairs == 64


def test_serial_awaits_do_not_batch(service):
    """A serial caller gets merge_ratio 1.0 — batching needs concurrency."""

    async def scenario():
        async with AsyncDistanceService(service) as frontend:
            for s in range(8):
                await frontend.distance(s, s + 2)
            return frontend.stats

    stats = asyncio.run(scenario())
    assert stats.batches == 8
    assert stats.merge_ratio == 1.0


def test_max_batch_caps_a_single_fold(service):
    async def scenario():
        async with AsyncDistanceService(SlowService(service), max_batch=8) as f:
            await asyncio.gather(*(f.distance(s, s + 1) for s in range(32)))
            return f.stats

    stats = asyncio.run(scenario())
    assert stats.answered_requests == 32
    # No drain may fold more pairs than max_batch plus the one item
    # that opened the run (the opener is never split).
    assert stats.batches >= 32 // 9


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

def test_overload_sheds_instead_of_queueing(service):
    """With depth 4 and a slow backend, a 20-task burst sheds the rest —
    and the books balance: every offer is answered or shed."""
    slow = SlowService(service, delay=0.05)

    async def scenario():
        async with AsyncDistanceService(slow, max_queue_depth=4) as frontend:
            results = await asyncio.gather(
                *(frontend.distance(s, s + 1) for s in range(20)),
                return_exceptions=True,
            )
            return frontend.stats, results

    stats, results = asyncio.run(scenario())
    shed = [r for r in results if isinstance(r, ServiceOverloadError)]
    answered = [r for r in results if isinstance(r, float)]
    assert len(shed) == stats.shed_requests > 0
    assert len(answered) == stats.answered_requests > 0
    assert stats.offered_requests == stats.answered_requests + stats.shed_requests
    expected = service.distances([(0, 1)])[0]
    assert all(r == expected or r >= 0 for r in answered)


def test_shed_counter_reaches_metrics_registry(small_graph):
    obs = Observability.enabled()
    with DistanceService(
        DHLIndex.build(small_graph.copy(), DHLConfig(seed=0)),
        observability=obs,
    ) as svc:
        slow = SlowService(svc, delay=0.05)

        async def scenario():
            async with AsyncDistanceService(slow, max_queue_depth=2) as f:
                await asyncio.gather(
                    *(f.distance(s, s + 1) for s in range(12)),
                    return_exceptions=True,
                )

        asyncio.run(scenario())
    snap = obs.registry.snapshot()
    assert snap["dhl_async_shed_total"]["value"] > 0
    assert snap["dhl_async_batches_total"]["value"] >= 1
    assert (
        snap["dhl_async_requests_total"]["value"]
        + snap["dhl_async_shed_total"]["value"]
        == 12
    )


# ---------------------------------------------------------------------------
# updates: ordered with surrounding queries
# ---------------------------------------------------------------------------

def test_update_is_ordered_with_queries(small_graph):
    graph = small_graph.copy()
    u, v, w = next(iter(graph.edges()))
    with DistanceService(
        DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    ) as svc:
        sync_before = svc.distance(u, v)

        async def scenario():
            async with AsyncDistanceService(SlowService(svc)) as frontend:
                # Enqueue query → update → query in one tick: the
                # dispatcher must answer the first with the old weight
                # and the last with the new one.
                first = asyncio.ensure_future(frontend.distance(u, v))
                bump = asyncio.ensure_future(
                    frontend.update([(u, v, w * 3.0)])
                )
                second = asyncio.ensure_future(frontend.distance(u, v))
                return await asyncio.gather(first, bump, second), frontend.stats

        (before, _, after), stats = asyncio.run(scenario())
        assert before == sync_before
        assert after == svc.distance(u, v)
        assert after <= w * 3.0
        assert stats.updates == 1
        assert svc.index.epoch > 0  # the update really flushed


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def test_calls_require_a_running_dispatcher(service):
    async def scenario():
        frontend = AsyncDistanceService(service)
        with pytest.raises(ServiceOverloadError, match="not running"):
            await frontend.distances([(0, 1)])

    asyncio.run(scenario())


def test_close_is_idempotent_and_leaves_service_usable(service):
    async def scenario():
        frontend = await AsyncDistanceService(service).start()
        await frontend.distances([(0, 1)])
        await frontend.close()
        await frontend.close()
        with pytest.raises(ServiceOverloadError):
            await frontend.distances([(0, 2)])
        with pytest.raises(ServiceOverloadError, match="closed"):
            await frontend.start()

    asyncio.run(scenario())
    # The frontend only borrows the service: it must still answer.
    assert service.distance(0, 1) >= 0


def test_constructor_validation(service):
    with pytest.raises(ValueError, match="max_batch"):
        AsyncDistanceService(service, max_batch=0)
    with pytest.raises(ValueError, match="max_queue_depth"):
        AsyncDistanceService(service, max_queue_depth=0)
