"""Tests for timing and RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import make_rng, sample_pairs
from repro.utils.timing import Stopwatch, format_duration


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert sw.elapsed >= 0.0
        assert len(sw.laps) == 2
        assert sw.mean_lap == pytest.approx(sw.elapsed / 2)

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds, expected",
        [
            (1.2e-6, "1.20us"),
            (0.00345, "3.450ms"),
            (1.5, "1.500s"),
            (150.0, "2.50min"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative(self):
        assert format_duration(-1.5).startswith("-")


class TestRng:
    def test_make_rng_idempotent_on_generator(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_seeded_reproducible(self):
        assert make_rng(7).integers(0, 100) == make_rng(7).integers(0, 100)

    def test_sample_pairs_distinct(self):
        pairs = sample_pairs(10, 200, make_rng(0))
        assert len(pairs) == 200
        assert all(s != t for s, t in pairs)
        assert all(0 <= s < 10 and 0 <= t < 10 for s, t in pairs)

    def test_sample_pairs_rejects_singleton_distinct(self):
        with pytest.raises(ValueError):
            sample_pairs(1, 5, make_rng(0))

    def test_sample_pairs_allows_selfloops_when_not_distinct(self):
        pairs = sample_pairs(1, 5, make_rng(0), distinct=False)
        assert pairs == [(0, 0)] * 5
