"""Tests for the Dijkstra baselines, cross-checked against networkx."""

from __future__ import annotations

import math

import networkx as nx
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import (
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_distance,
    dijkstra_subgraph,
)
from repro.graph.graph import Graph
from tests.strategies import connected_graphs


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.edges():
        if math.isfinite(w):
            g.add_edge(u, v, weight=w)
    return g


class TestDijkstra:
    def test_path_graph(self, path_graph):
        dist = dijkstra(path_graph, 0)
        assert dist.tolist() == [0.0, 1.0, 3.0, 6.0, 10.0]

    def test_unreachable_inf(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        dist = dijkstra(g, 0)
        assert math.isinf(dist[2])

    def test_inf_edges_skipped(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.set_weight(1, 2, math.inf)
        assert math.isinf(dijkstra(g, 0)[2])

    def test_targets_early_exit(self, small_road):
        full = dijkstra(small_road, 0)
        targeted = dijkstra(small_road, 0, targets=[5, 10])
        assert targeted[5] == full[5] and targeted[10] == full[10]

    def test_matches_networkx(self, medium_random):
        ref = nx.single_source_dijkstra_path_length(to_networkx(medium_random), 0)
        dist = dijkstra(medium_random, 0)
        for v, d in ref.items():
            assert dist[v] == d

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(max_n=20))
    def test_matches_networkx_random(self, graph):
        ref = nx.single_source_dijkstra_path_length(to_networkx(graph), 0)
        dist = dijkstra(graph, 0)
        for v in range(graph.num_vertices):
            assert dist[v] == ref.get(v, math.inf)


class TestPointToPoint:
    def test_early_exit_matches_full(self, small_road):
        full = dijkstra(small_road, 3)
        for t in (0, 50, 150, 299):
            assert dijkstra_distance(small_road, 3, t) == full[t]

    def test_same_vertex(self, small_road):
        assert dijkstra_distance(small_road, 7, 7) == 0.0

    def test_unreachable(self):
        g = Graph(2)
        assert math.isinf(dijkstra_distance(g, 0, 1))


class TestBidirectional:
    def test_matches_unidirectional(self, small_road):
        full = dijkstra(small_road, 11)
        for t in (0, 42, 123, 299):
            assert bidirectional_dijkstra(small_road, 11, t) == full[t]

    def test_same_vertex(self, small_road):
        assert bidirectional_dijkstra(small_road, 5, 5) == 0.0

    def test_unreachable(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        assert math.isinf(bidirectional_dijkstra(g, 0, 3))

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(max_n=20))
    def test_matches_dijkstra_random(self, graph):
        full = dijkstra(graph, 0)
        for t in range(graph.num_vertices):
            assert bidirectional_dijkstra(graph, 0, t) == full[t]


class TestSubgraphDijkstra:
    def test_restriction_blocks_paths(self, path_graph):
        # forbid the middle vertex: 0..4 becomes unreachable
        blocked = dijkstra_subgraph(path_graph, 0, 4, lambda v: v != 2)
        assert math.isinf(blocked)
        allowed = dijkstra_subgraph(path_graph, 0, 4, lambda v: True)
        assert allowed == 10.0

    def test_endpoint_always_allowed_via_predicate(self, diamond_graph):
        d = dijkstra_subgraph(diamond_graph, 0, 3, lambda v: v in (1, 3))
        assert d == 2.0
