"""Hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.graph import Graph


@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 24, max_weight: int = 30):
    """Connected undirected graphs with integer weights.

    A random spanning path guarantees connectivity; extra random edges
    add cycles. Weights are integers (the library's recommended regime).
    """
    n = draw(st.integers(min_n, max_n))
    perm = draw(st.permutations(range(n)))
    weights = st.integers(1, max_weight)
    edges: dict[tuple[int, int], float] = {}
    for i in range(n - 1):
        u, v = perm[i], perm[i + 1]
        key = (min(u, v), max(u, v))
        edges[key] = float(draw(weights))
    extra_count = draw(st.integers(0, 2 * n))
    for _ in range(extra_count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in edges:
            edges[key] = float(draw(weights))
    g = Graph(n)
    for (u, v), w in edges.items():
        g.add_edge(u, v, w)
    return g


@st.composite
def update_sequences(draw, graph: Graph, max_steps: int = 6, max_batch: int = 4):
    """Sequences of mixed weight-update batches for *graph*.

    Each step is a batch of ``(u, v, new_weight)`` with integer weights;
    roughly half increases, half decreases relative to a plausible range.
    """
    edges = list(graph.edges())
    steps = draw(st.integers(1, max_steps))
    sequence = []
    for _ in range(steps):
        size = draw(st.integers(1, min(max_batch, len(edges))))
        idx = draw(
            st.lists(
                st.integers(0, len(edges) - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        batch = []
        for i in idx:
            u, v, _ = edges[i]
            batch.append((u, v, float(draw(st.integers(1, 60)))))
        sequence.append(batch)
    return sequence
