"""Tests for the DHLIndex facade, config and stats."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.core.stats import IndexStats
from repro.exceptions import IndexBuildError
from repro.graph.graph import Graph


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = DHLConfig()
        assert cfg.beta == 0.2  # the paper's balance threshold
        assert cfg.leaf_size >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": 0.0},
            {"beta": 0.7},
            {"leaf_size": 0},
            {"coarsest_size": 2},
            {"workers": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(IndexBuildError):
            DHLConfig(**kwargs)

    def test_frozen(self):
        cfg = DHLConfig()
        with pytest.raises(Exception):
            cfg.beta = 0.3  # type: ignore[misc]


class TestBuild:
    def test_empty_graph_rejected(self):
        with pytest.raises(IndexBuildError):
            DHLIndex.build(Graph(0))

    def test_single_vertex(self):
        idx = DHLIndex.build(Graph(1))
        assert idx.distance(0, 0) == 0.0

    def test_two_vertices_disconnected(self):
        idx = DHLIndex.build(Graph(2))
        assert math.isinf(idx.distance(0, 1))

    def test_validate_flag_runs_checks(self, small_road):
        idx = DHLIndex.build(small_road.copy(), DHLConfig(validate=True))
        assert idx.distance(0, 1) >= 0

    def test_deterministic_given_seed(self, small_road):
        a = DHLIndex.build(small_road.copy(), DHLConfig(seed=4))
        b = DHLIndex.build(small_road.copy(), DHLConfig(seed=4))
        assert a.labels.equals(b.labels)
        assert np.array_equal(a.hq.tau, b.hq.tau)

    def test_verify_full_suite(self, small_index):
        small_index.verify()


class TestQueries:
    def test_distances_batch(self, small_index):
        pairs = [(0, 10), (5, 5), (20, 100)]
        out = small_index.distances(pairs)
        assert out[1] == 0.0
        assert out[0] == small_index.distance(0, 10)

    def test_agreement_with_dijkstra_sampled(self, small_index):
        ref = dijkstra(small_index.graph, 17)
        for t in range(0, 300, 11):
            assert small_index.distance(17, t) == ref[t]

    def test_distance_with_hub(self, small_index):
        d, hub = small_index.distance_with_hub(3, 250)
        assert d == small_index.distance(3, 250)
        assert hub >= 0


class TestStats:
    def test_stats_fields(self, small_index):
        stats = small_index.stats()
        assert isinstance(stats, IndexStats)
        assert stats.num_vertices == 300
        assert stats.label_entries == small_index.labels.num_entries
        assert stats.label_bytes > 0
        assert stats.num_shortcuts >= small_index.graph.num_edges
        assert stats.height == small_index.hq.height
        assert stats.construction_seconds > 0
        assert stats.total_bytes >= stats.label_bytes

    def test_summary_renders(self, small_index):
        text = small_index.stats().summary()
        assert "label entries" in text
        assert "total construction" in text

    def test_stats_track_graph_after_updates(self, small_index):
        u, v, w = next(iter(small_index.graph.edges()))
        small_index.increase([(u, v, 2 * w)])
        stats = small_index.stats()
        assert stats.label_entries == small_index.labels.num_entries


class TestRebuild:
    def test_rebuild_equals_original_on_unchanged_graph(self, small_index):
        rebuilt = small_index.rebuild()
        assert rebuilt.labels.equals(small_index.labels)

    def test_repr(self, small_index):
        assert "DHLIndex" in repr(small_index)
