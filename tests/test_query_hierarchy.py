"""Tests for the query hierarchy H_Q and the vertex partial order."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.exceptions import HierarchyError
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.partition.recursive import PartitionTreeNode, recursive_bisection
from tests.strategies import connected_graphs


def tiny_tree() -> PartitionTreeNode:
    """Root {0,1}; left child {2,3}; right child {4} with leaf {5}."""
    return PartitionTreeNode(
        vertices=[0, 1],
        children=[
            PartitionTreeNode(vertices=[2, 3]),
            PartitionTreeNode(
                vertices=[4],
                children=[PartitionTreeNode(vertices=[5])],
            ),
        ],
    )


@pytest.fixture
def hq() -> QueryHierarchy:
    return QueryHierarchy.from_partition_tree(tiny_tree(), 6)


class TestConstruction:
    def test_tau_assignment(self, hq):
        # root: 0 -> 0, 1 -> 1; both children start at rank 2
        assert hq.tau[0] == 0 and hq.tau[1] == 1
        assert hq.tau[2] == 2 and hq.tau[3] == 3
        assert hq.tau[4] == 2 and hq.tau[5] == 3

    def test_height(self, hq):
        assert hq.height == 4

    def test_missing_vertex_detected(self):
        tree = PartitionTreeNode(vertices=[0, 1])
        with pytest.raises(HierarchyError):
            QueryHierarchy.from_partition_tree(tree, 3)

    def test_duplicate_vertex_detected(self):
        tree = PartitionTreeNode(
            vertices=[0], children=[PartitionTreeNode(vertices=[0, 1])]
        )
        with pytest.raises(HierarchyError):
            QueryHierarchy.from_partition_tree(tree, 2)

    def test_tree_nodes_aligned(self, hq):
        assert hq.tree_nodes is not None
        assert [len(n.vertices) for n in hq.tree_nodes] == [
            len(m) for m in hq.node_members
        ]


class TestPartialOrder:
    def test_precedes_within_node(self, hq):
        assert hq.precedes(0, 1)
        assert not hq.precedes(1, 0)
        assert hq.precedes(0, 0)

    def test_precedes_across_nodes(self, hq):
        assert hq.precedes(0, 5)
        assert hq.precedes(4, 5)
        assert not hq.precedes(5, 4)

    def test_incomparable_branches(self, hq):
        assert not hq.comparable(2, 4)
        assert not hq.comparable(3, 5)

    def test_ancestors_chain(self, hq):
        assert hq.ancestors(5) == [0, 1, 4, 5]
        assert hq.ancestors(3) == [0, 1, 2, 3]
        assert hq.ancestors(0) == [0]

    def test_ancestors_rank_alignment(self, hq):
        for v in range(6):
            chain = hq.ancestors(v)
            for i, w in enumerate(chain):
                assert hq.tau[w] == i
            assert chain[-1] == v


class TestLCA:
    def test_lca_depth(self, hq):
        assert hq.lca_depth(2, 5) == 0
        assert hq.lca_depth(4, 5) == 1
        assert hq.lca_depth(5, 5) == 2
        assert hq.lca_depth(0, 5) == 0

    def test_common_ancestor_count_cross_branch(self, hq):
        # 2 and 4 only share the root node vertices {0, 1}
        assert hq.common_ancestor_count(2, 4) == 2

    def test_common_ancestor_count_same_chain(self, hq):
        # 4 is an ancestor of 5: all of anc(4) are common
        assert hq.common_ancestor_count(4, 5) == 3
        assert hq.common_ancestor_count(5, 4) == 3

    def test_common_ancestor_count_same_node(self, hq):
        assert hq.common_ancestor_count(2, 3) == 3
        assert hq.common_ancestor_count(0, 1) == 1

    def test_count_matches_bruteforce_partial_order(self, hq):
        for s in range(6):
            for t in range(6):
                expected = sum(
                    1
                    for w in range(6)
                    if hq.precedes(w, s) and hq.precedes(w, t)
                )
                assert hq.common_ancestor_count(s, t) == expected, (s, t)


class TestOrders:
    def test_contraction_order_decreasing_tau(self, hq):
        order = hq.contraction_order()
        taus = [hq.tau[v] for v in order]
        assert taus == sorted(taus, reverse=True)

    def test_iter_vertices_by_tau(self, hq):
        taus = [hq.tau[v] for v in hq.iter_vertices_by_tau()]
        assert taus == sorted(taus)

    def test_memory_bytes_positive(self, hq):
        assert hq.memory_bytes() > 0


class TestOnRealPartitions:
    def test_validate_graph(self, small_road):
        tree = recursive_bisection(small_road, seed=0)
        hq = QueryHierarchy.from_partition_tree(tree, small_road.num_vertices)
        hq.validate_graph(small_road)  # must not raise

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(min_n=3, max_n=25))
    def test_common_ancestors_bruteforce_random(self, graph):
        tree = recursive_bisection(graph, leaf_size=3, seed=0)
        hq = QueryHierarchy.from_partition_tree(tree, graph.num_vertices)
        hq.validate_graph(graph)
        n = graph.num_vertices
        for s in range(0, n, 3):
            for t in range(0, n, 2):
                expected = sum(
                    1
                    for w in range(n)
                    if hq.precedes(w, s) and hq.precedes(w, t)
                )
                assert hq.common_ancestor_count(s, t) == expected
