"""Differential tests: the three maintenance engines must agree.

The frontier-batched kernels (``engine="array"``) and the compiled
heap sweeps (``engine="compiled"``) must be observationally identical
to the one-pop-per-entry reference (``engine="reference"``): same
labels, same shortcut/label change counts, same affected-shortcut
dicts (including the recorded old weights) and same affected-label
vertex sets, under arbitrary interleavings of increase and decrease
batches. Only ``entries_processed`` (search effort) may differ — the
array engine relaxes along shortcut weights (Lemma 6.3) while the
scalar reference relaxes along label entries, which changes the
intermediate frontier but not the fixpoint.

The compiled engine runs here even without numba: ``force_compiled``
patches the capability probe so ``engine="compiled"`` resolves to the
compiled drivers, whose kernels degrade to pure-Python loops — the same
code numba compiles, so the differential covers the kernel logic on
every machine and the JIT'd machine code on the numba CI leg.
"""

from __future__ import annotations

import contextlib
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import repro.labelling.compiled as compiled
from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.directed import DirectedDHLIndex
from repro.core.index import DHLIndex
from repro.core.sharded import ShardedDHLIndex
from repro.graph.digraph import DiGraph
from repro.hierarchy.contraction import contract_in_order
from repro.labelling.maintenance import MaintenanceStats
from tests.strategies import connected_graphs, update_sequences


@contextlib.contextmanager
def force_compiled():
    """Make ``engine="compiled"`` resolve to the compiled drivers.

    Without numba the capability probe downgrades compiled to array, so
    the differential would silently compare array against itself. The
    kernels themselves run fine uncompiled; forcing the probe exercises
    the full compiled dispatch (index seam, directed label seam, sharded
    routing, query gather) on every machine.
    """
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(compiled, "available", lambda: True)
        yield


def assert_stats_match(array_stats, reference_stats) -> None:
    """The engine-independent fields of two maintenance passes agree."""
    assert array_stats.shortcuts_changed == reference_stats.shortcuts_changed
    assert array_stats.labels_changed == reference_stats.labels_changed
    assert array_stats.affected_shortcuts == reference_stats.affected_shortcuts
    assert array_stats.affected_labels == reference_stats.affected_labels


def split_batch(graph, batch):
    """Classify a mixed batch against *graph* into (increases, decreases)."""
    increases, decreases = [], []
    for u, v, w in batch:
        current = graph.weight(u, v)
        if w > current:
            increases.append((u, v, w))
        elif w < current:
            decreases.append((u, v, w))
    return increases, decreases


class TestUndirectedDifferential:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data=connected_graphs(min_n=4, max_n=20).flatmap(
            lambda g: update_sequences(g, max_steps=5).map(lambda seq: (g, seq))
        )
    )
    def test_engines_identical_under_random_interleavings(self, data):
        graph, sequence = data
        with force_compiled():
            config_a = DHLConfig(leaf_size=3, seed=0, engine="array")
            config_r = DHLConfig(leaf_size=3, seed=0, engine="reference")
            config_c = DHLConfig(leaf_size=3, seed=0, engine="compiled")
            idx_a = DHLIndex.build(graph.copy(), config_a)
            idx_r = DHLIndex.build(graph.copy(), config_r)
            idx_c = DHLIndex.build(graph.copy(), config_c)
            for batch in sequence:
                seen = {}
                for u, v, w in batch:
                    seen[(min(u, v), max(u, v))] = (u, v, w)
                merged = list(seen.values())
                increases, decreases = split_batch(idx_a.graph, merged)
                for changes, method in (
                    (increases, "increase"),
                    (decreases, "decrease"),
                ):
                    if not changes:
                        continue
                    stats_a = getattr(idx_a, method)(changes)
                    stats_r = getattr(idx_r, method)(changes)
                    stats_c = getattr(idx_c, method)(changes)
                    assert_stats_match(stats_a, stats_r)
                    assert_stats_match(stats_c, stats_r)
                assert idx_a.labels.equals(idx_r.labels)
                assert idx_c.labels.equals(idx_r.labels)
                np.testing.assert_array_equal(
                    idx_a.hu.up_weights, idx_r.hu.up_weights
                )
                np.testing.assert_array_equal(
                    idx_c.hu.up_weights, idx_r.hu.up_weights
                )
            ref = dijkstra(idx_a.graph, 0)
            for t in range(graph.num_vertices):
                assert idx_a.distance(0, t) == ref[t]
                assert idx_c.distance(0, t) == ref[t]

    def test_array_engine_matches_rebuild(self, small_road):
        idx = DHLIndex.build(small_road.copy(), DHLConfig(leaf_size=4, seed=0))
        assert idx.config.engine == "array"
        edges = list(idx.graph.edges())
        idx.increase([(u, v, 3 * w) for u, v, w in edges[:60]])
        idx.decrease([(u, v, max(1.0, w // 2)) for u, v, w in edges[30:90]])
        rebuilt = DHLIndex.build(idx.graph.copy(), idx.config)
        assert idx.labels.equals(rebuilt.labels)
        idx.hu.verify_minimum_weight_property()

    def test_decrease_stats_count_distinct_entries(self, small_road):
        """Both engines report |L-delta| as *distinct* changed entries."""
        for engine in ("array", "reference"):
            idx = DHLIndex.build(
                small_road.copy(), DHLConfig(leaf_size=4, seed=0, engine=engine)
            )
            before = idx.labels.copy()
            batch = [
                (u, v, max(1.0, w // 3))
                for u, v, w in list(idx.graph.edges())[:25]
            ]
            stats = idx.decrease(batch)
            assert stats.labels_changed == before.diff_count(idx.labels)


class TestDirectedDifferential:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data=connected_graphs(min_n=4, max_n=14).flatmap(
            lambda g: update_sequences(g, max_steps=4).map(lambda seq: (g, seq))
        )
    )
    def test_engines_identical_on_digraphs(self, data):
        graph, sequence = data
        with force_compiled():
            digraph_a = DiGraph.from_undirected(graph)
            # Make half the arcs asymmetric so both label stores do real
            # work.
            for i, (u, v, w) in enumerate(list(digraph_a.arcs())):
                if i % 2 == 0:
                    digraph_a.set_weight(u, v, float(w + 3))
            digraph_r = digraph_a.copy()
            digraph_c = digraph_a.copy()
            config_a = DHLConfig(leaf_size=3, seed=0, engine="array")
            config_r = DHLConfig(leaf_size=3, seed=0, engine="reference")
            config_c = DHLConfig(leaf_size=3, seed=0, engine="compiled")
            idx_a = DirectedDHLIndex.build(digraph_a, config_a)
            idx_r = DirectedDHLIndex.build(digraph_r, config_r)
            idx_c = DirectedDHLIndex.build(digraph_c, config_c)
            for batch in sequence:
                seen = {}
                for u, v, w in batch:
                    # Directed updates address one arc; dedupe on the arc.
                    seen[(u, v)] = (u, v, w)
                merged = [
                    (u, v, w)
                    for (u, v, w) in seen.values()
                    if digraph_a.out_neighbors(u).get(v) is not None
                ]
                if not merged:
                    continue
                stats_a = idx_a.update(merged)
                stats_r = idx_r.update(merged)
                stats_c = idx_c.update(merged)
                assert_stats_match(stats_a, stats_r)
                assert_stats_match(stats_c, stats_r)
                for idx in (idx_a, idx_c):
                    assert idx.labels_out.equals(idx_r.labels_out)
                    assert idx.labels_in.equals(idx_r.labels_in)
                    np.testing.assert_array_equal(
                        idx.out_weights, idx_r.out_weights
                    )
                    np.testing.assert_array_equal(
                        idx.in_weights, idx_r.in_weights
                    )


class TestShardedDifferential:
    def test_k2_sharded_engines_agree(self, small_road):
        with force_compiled():
            config_a = DHLConfig(seed=0, engine="array")
            config_r = DHLConfig(seed=0, engine="reference")
            config_c = DHLConfig(seed=0, engine="compiled")
            sharded_a = ShardedDHLIndex.build(
                small_road.copy(), k=2, config=config_a, build_workers=1
            )
            sharded_r = ShardedDHLIndex.build(
                small_road.copy(), k=2, config=config_r, build_workers=1
            )
            sharded_c = ShardedDHLIndex.build(
                small_road.copy(), k=2, config=config_c, build_workers=1
            )
            edges = list(small_road.edges())
            batches = [
                [(u, v, 2 * w) for u, v, w in edges[:40]],
                [(u, v, w) for u, v, w in edges[:40]],
                [(u, v, max(1.0, w // 2)) for u, v, w in edges[40:80]],
            ]
            rng = np.random.default_rng(3)
            pairs = [
                (int(s), int(t))
                for s, t in rng.integers(
                    0, small_road.num_vertices, size=(200, 2)
                )
            ]
            for batch in batches:
                sharded_a.update(batch)
                sharded_r.update(batch)
                sharded_c.update(batch)
                for shard_a, shard_r, shard_c in zip(
                    sharded_a.shards, sharded_r.shards, sharded_c.shards
                ):
                    assert shard_a.labels.equals(shard_r.labels)
                    assert shard_c.labels.equals(shard_r.labels)
                expected = sharded_r.distances(pairs)
                np.testing.assert_array_equal(
                    sharded_a.distances(pairs), expected
                )
                np.testing.assert_array_equal(
                    sharded_c.distances(pairs), expected
                )
            ref = dijkstra(sharded_a.graph, 1)
            for t in range(0, small_road.num_vertices, 17):
                assert sharded_a.distance(1, t) == ref[t]
                assert sharded_c.distance(1, t) == ref[t]


class TestCSRStore:
    def test_rows_rank_sorted_and_slot_lookup(self, medium_random):
        sc = contract_in_order(
            medium_random, list(range(medium_random.num_vertices))
        )
        csr = sc.csr
        for v in range(csr.n):
            row = csr.row(v)
            row_ranks = sc.rank[row]
            assert (np.diff(row_ranks) > 0).all()
            start = int(csr.indptr[v])
            for offset, u in enumerate(row.tolist()):
                assert csr.slot_of(v, u) == start + offset
        assert (np.diff(csr.slot_keys) > 0).all()

    def test_down_slots_point_to_up_slots(self, medium_random):
        sc = contract_in_order(
            medium_random, list(range(medium_random.num_vertices))
        )
        csr = sc.csr
        for v in range(csr.n):
            start, end = int(csr.down_indptr[v]), int(csr.down_indptr[v + 1])
            for k in range(start, end):
                x = int(csr.down_indices[k])
                slot = int(csr.down_slots[k])
                assert int(csr.owners[slot]) == x
                assert int(csr.indices[slot]) == v

    def test_wup_view_shares_flat_weights(self, path_graph):
        sc = contract_in_order(path_graph, [2, 1, 3, 0, 4])
        # View write lands in the flat array, and vice versa.
        sc.wup[1][3] = 42.0
        assert sc.up_weights[sc.csr.slot_of(1, 3)] == 42.0
        sc.up_weights[sc.csr.slot_of(1, 3)] = 7.0
        assert sc.wup[1][3] == 7.0
        assert sc.weight(3, 1) == 7.0

    def test_pickle_roundtrip_keeps_store_live(self, small_road):
        """Maintenance after unpickling must write into the live buffers."""
        idx = DHLIndex.build(small_road.copy(), DHLConfig(leaf_size=4, seed=0))
        clone = pickle.loads(pickle.dumps(idx.hu))
        u, v, w = next(iter(clone.graph.edges()))
        lo, hi = clone.shortcut_key(u, v)
        clone.wup[lo][hi] = 123.0
        assert clone.up_weights[clone.csr.slot_of(lo, hi)] == 123.0
        # Compat views rebuilt lazily reflect the same storage.
        assert clone.weight(lo, hi) == 123.0


class TestMaintenanceStatsMerge:
    def test_merge_keeps_earliest_old_weight(self):
        """Regression: merging two passes must keep the first-seen old
        weight per shortcut, not let the later batch overwrite it."""
        first = MaintenanceStats(
            shortcuts_changed=1, affected_shortcuts={(1, 2): 10.0}
        )
        second = MaintenanceStats(
            shortcuts_changed=1,
            affected_shortcuts={(1, 2): 20.0, (3, 4): 5.0},
        )
        merged = first.merge(second)
        assert merged.affected_shortcuts == {(1, 2): 10.0, (3, 4): 5.0}
        assert merged.shortcuts_changed == 2
        # And the symmetric direction keeps its own first-seen value.
        flipped = second.merge(first)
        assert flipped.affected_shortcuts == {(1, 2): 20.0, (3, 4): 5.0}

    def test_increase_then_restore_records_pre_batch_weights(self, small_road):
        """End-to-end: a x2-then-restore mixed batch reports the weight
        each shortcut held before the *first* change."""
        idx = DHLIndex.build(small_road.copy(), DHLConfig(leaf_size=4, seed=0))
        u, v, w = next(iter(idx.graph.edges()))
        lo, hi = idx.hu.shortcut_key(u, v)
        original = idx.hu.weight(lo, hi)
        stats = idx.increase([(u, v, 2 * w)]).merge(idx.decrease([(u, v, w)]))
        assert stats.affected_shortcuts[(lo, hi)] == original


class TestOverlayIncrementalRefresh:
    def test_untouched_boundary_rows_are_skipped(self, small_road):
        """The clique refresh recomputes only pairs with a touched
        endpoint: one affected boundary vertex of a region with B
        boundary vertices costs B-1 pair distances, not B*(B-1)/2."""
        sharded = ShardedDHLIndex.build(
            small_road.copy(), k=4, config=DHLConfig(seed=0), build_workers=1
        )
        rid = max(
            range(sharded.k), key=lambda r: len(sharded.boundary_local[r])
        )
        boundary = sharded.boundary_local[rid]
        if len(boundary) < 3:
            pytest.skip("partition produced too small a boundary")
        shard = sharded.shards[rid]
        recorded: list[int] = []

        class CountingEngine:
            def distances_arrays(self, s, t):
                recorded.append(len(s))
                return shard.engine.distances_arrays(s, t)

        class ShardProxy:
            engine = CountingEngine()

        from repro.sharding.overlay import clique_refresh_changes

        affected = {int(boundary[0])}
        clique_refresh_changes(
            ShardProxy(),
            boundary,
            sharded.boundary_overlay[rid],
            sharded.overlay.graph,
            affected,
        )
        assert recorded == [len(boundary) - 1]

    def test_no_affected_labels_no_recompute(self, small_road):
        sharded = ShardedDHLIndex.build(
            small_road.copy(), k=2, config=DHLConfig(seed=0), build_workers=1
        )
        from repro.sharding.overlay import clique_refresh_changes

        changes = clique_refresh_changes(
            sharded.shards[0],
            sharded.boundary_local[0],
            sharded.boundary_overlay[0],
            sharded.overlay.graph,
            set(),
        )
        assert changes == []
