"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.graph.generators import (
    delaunay_network,
    grid_network,
    random_connected_graph,
)
from repro.graph.graph import Graph


@pytest.fixture
def path_graph() -> Graph:
    """0 - 1 - 2 - 3 - 4 path with weights 1, 2, 3, 4."""
    g = Graph(5)
    for i in range(4):
        g.add_edge(i, i + 1, float(i + 1))
    return g


@pytest.fixture
def diamond_graph() -> Graph:
    """Two parallel routes of different lengths between 0 and 3."""
    g = Graph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(0, 2, 2.0)
    g.add_edge(2, 3, 2.0)
    return g


@pytest.fixture
def small_road() -> Graph:
    """A 300-vertex road-like network (Delaunay, fixed seed)."""
    return delaunay_network(300, seed=77)


@pytest.fixture
def small_grid() -> Graph:
    return grid_network(12, 14, seed=3)


@pytest.fixture
def medium_random() -> Graph:
    return random_connected_graph(120, extra_edges=90, seed=5)


@pytest.fixture
def small_index(small_road) -> DHLIndex:
    """DHL index over the 300-vertex road network (owned copy)."""
    return DHLIndex.build(small_road.copy(), DHLConfig(leaf_size=6, seed=0))


def all_pairs_reference(graph: Graph) -> np.ndarray:
    """Dense all-pairs distances via repeated Dijkstra (test oracle)."""
    from repro.baselines.dijkstra import dijkstra

    n = graph.num_vertices
    out = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        out[s] = dijkstra(graph, s)
    return out
