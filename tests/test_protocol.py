"""The runtime wire protocol: roundtrips, framing, and rejection.

The codec is the contract between the scheduler and every transport
(pipes today, TCP replicas, future remote hosts), so the load-bearing
properties are: any message survives encode→decode bit-exactly
(hypothesis-generated batches, deltas, traces included), and a frame
that is truncated, version-skewed, or otherwise malformed raises
:class:`ProtocolError` instead of yielding garbage distances.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    ProtocolCorruptionError,
    ProtocolError,
    ProtocolTruncationError,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AckReply,
    ByeReply,
    ComputeBatch,
    ComputeReply,
    EpochDelta,
    ErrorReply,
    FanQuery,
    HealthCheck,
    HealthReply,
    ReadyReply,
    Republish,
    Shutdown,
    SpecRequest,
    StaleReply,
    SubQuery,
    SubResult,
    TraceEnvelope,
    decode_frame,
    encode_frame,
    recv_message,
    send_message,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

i64_arrays = st.lists(
    st.integers(min_value=0, max_value=2**31), min_size=0, max_size=8
).map(lambda xs: np.array(xs, dtype=np.int64))

f64_arrays = st.lists(
    st.one_of(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.just(float("inf")),
    ),
    min_size=0,
    max_size=8,
).map(lambda xs: np.array(xs, dtype=np.float64))


def f64_matrix(draw):
    rows = draw(st.integers(min_value=1, max_value=4))
    cols = draw(st.integers(min_value=1, max_value=4))
    flat = draw(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=True, width=32),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.array(flat, dtype=np.float64).reshape(rows, cols)


@st.composite
def sub_queries(draw):
    has_pairs = draw(st.booleans())
    has_fans = draw(st.booleans())
    has_block = has_fans and draw(st.booleans())
    s = draw(i64_arrays) if has_pairs else None
    return SubQuery(
        s=s,
        t=(draw(i64_arrays) if has_pairs else None),
        fan_src=FanQuery(draw(i64_arrays)) if has_fans else None,
        fan_dst=FanQuery(draw(i64_arrays)) if has_fans else None,
        block=f64_matrix(draw) if has_block else None,
        block_cached=draw(st.booleans()) if not has_block else False,
        block_epoch=draw(st.integers(min_value=-1, max_value=50)),
    )


@st.composite
def compute_batches(draw):
    return ComputeBatch(
        epoch=draw(st.integers(min_value=0, max_value=1000)),
        subs=draw(st.lists(sub_queries(), min_size=0, max_size=4)),
        want_trace=draw(st.booleans()),
    )


@st.composite
def epoch_deltas(draw):
    inline = draw(st.booleans())
    return EpochDelta(
        epoch=draw(st.integers(min_value=0, max_value=1000)),
        vertices=draw(i64_arrays) if inline else None,
        payload=draw(f64_arrays) if inline else None,
    )


@st.composite
def trace_envelopes(draw):
    # The span dict shape produced by Span.to_dict(): JSON-safe nesting.
    leaf = st.fixed_dictionaries(
        {
            "name": st.text(min_size=1, max_size=12),
            "seconds": st.floats(min_value=0, max_value=10, allow_nan=False),
        }
    )
    return TraceEnvelope(
        spans=draw(
            st.fixed_dictionaries(
                {
                    "name": st.text(min_size=1, max_size=12),
                    "seconds": st.floats(
                        min_value=0, max_value=10, allow_nan=False
                    ),
                    "children": st.lists(leaf, max_size=3),
                }
            )
        )
    )


@st.composite
def compute_replies(draw):
    results = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            results.append(SubResult(final=draw(f64_arrays)))
        else:
            results.append(
                SubResult(
                    ds=f64_matrix(draw),
                    ds_inverse=draw(i64_arrays),
                    dt=f64_matrix(draw),
                    dt_inverse=draw(i64_arrays),
                )
            )
    return ComputeReply(
        results=results,
        trace=draw(trace_envelopes()) if draw(st.booleans()) else None,
    )


# ---------------------------------------------------------------------------
# equality helpers (dataclass == chokes on numpy fields)
# ---------------------------------------------------------------------------

def assert_same(a, b):
    assert type(a) is type(b)
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape
        np.testing.assert_array_equal(a, b)
        return
    if hasattr(a, "__dataclass_fields__"):
        for name in a.__dataclass_fields__:
            assert_same(getattr(a, name), getattr(b, name))
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_same(x, y)
        return
    assert a == b


# ---------------------------------------------------------------------------
# roundtrip properties
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(batch=compute_batches())
def test_compute_batch_roundtrip(batch):
    assert_same(decode_frame(encode_frame(batch)), batch)


@settings(max_examples=50, deadline=None)
@given(delta=epoch_deltas())
def test_epoch_delta_roundtrip(delta):
    assert_same(decode_frame(encode_frame(delta)), delta)


@settings(max_examples=50, deadline=None)
@given(reply=compute_replies())
def test_compute_reply_roundtrip(reply):
    assert_same(decode_frame(encode_frame(reply)), reply)


@settings(max_examples=25, deadline=None)
@given(envelope=trace_envelopes())
def test_trace_envelope_rides_compute_reply(envelope):
    reply = ComputeReply(results=[], trace=envelope)
    assert decode_frame(encode_frame(reply)).trace.spans == envelope.spans


def test_scalar_messages_roundtrip():
    for message in (
        ReadyReply(num_vertices=42, epoch=7),
        StaleReply(held=3, stamped=5),
        ErrorReply(message="KeyError: 'boom'"),
        AckReply(),
        ByeReply(),
        Shutdown(),
        Republish(
            epoch=9,
            shm_values="psm_abc",
            shm_offsets="psm_def",
            values_len=10,
            offsets_len=11,
        ),
        Republish(
            epoch=9,
            values=np.array([1.0, np.inf]),
            offsets=np.array([0, 2], dtype=np.int64),
        ),
    ):
        assert_same(decode_frame(encode_frame(message)), message)


def test_spec_request_roundtrip_preserves_payload_bytes():
    spec = SpecRequest(
        payload=b"\x00\x01pickled-structure\xff",
        epoch=3,
        values=np.array([1.5, 2.5]),
        offsets=np.array([0, 1, 2], dtype=np.int64),
    )
    out = decode_frame(encode_frame(spec))
    assert out.payload == spec.payload
    assert out.epoch == 3
    np.testing.assert_array_equal(out.values, spec.values)


def test_decoded_arrays_preserve_dtype_and_2d_shape():
    sub = SubQuery(
        fan_src=FanQuery(np.array([3, 1, 2], dtype=np.int64)),
        block=np.arange(6, dtype=np.float64).reshape(2, 3),
    )
    out = decode_frame(encode_frame(ComputeBatch(epoch=0, subs=[sub])))
    decoded = out.subs[0]
    assert decoded.block.shape == (2, 3)
    assert decoded.block.dtype == np.float64
    assert decoded.fan_src.vertices.dtype == np.int64


def test_frame_has_no_pickle_on_compute_path():
    """Compute frames must be parseable without the pickle module: the
    byte stream contains the magic + JSON meta + raw buffers only."""
    batch = ComputeBatch(
        epoch=1,
        subs=[SubQuery(s=np.array([1], dtype=np.int64), t=np.array([2], dtype=np.int64))],
    )
    frame = encode_frame(batch)
    assert frame.startswith(b"DHLP")
    # Pickle streams start with b"\x80"; no pickle opcode framing here.
    assert b"\x80\x04" not in frame and b"\x80\x05" not in frame


# ---------------------------------------------------------------------------
# rejection: truncation, version skew, malformed frames
# ---------------------------------------------------------------------------

def reference_frame() -> bytes:
    return encode_frame(
        ComputeBatch(
            epoch=5,
            subs=[
                SubQuery(
                    s=np.array([0, 1], dtype=np.int64),
                    t=np.array([2, 3], dtype=np.int64),
                    block=np.ones((2, 2)),
                )
            ],
        )
    )


@pytest.mark.parametrize("cut", [0, 3, 7, 11, 20, -1])
def test_truncated_frames_rejected(cut):
    frame = reference_frame()
    with pytest.raises(ProtocolError, match="truncated|header"):
        decode_frame(frame[: cut if cut >= 0 else len(frame) - 1])


def test_every_truncation_point_rejected_or_never_silent():
    """No prefix of a valid frame may decode silently — each length
    either raises ProtocolError or (full length) decodes correctly."""
    frame = reference_frame()
    for n in range(len(frame)):
        with pytest.raises(ProtocolError):
            decode_frame(frame[:n])
    decode_frame(frame)  # the untruncated frame still parses


def test_version_mismatch_rejected():
    frame = bytearray(reference_frame())
    offset = 4  # after magic
    (version,) = struct.unpack_from("<H", frame, offset)
    assert version == PROTOCOL_VERSION
    struct.pack_into("<H", frame, offset, PROTOCOL_VERSION + 1)
    with pytest.raises(ProtocolError, match="version mismatch"):
        decode_frame(bytes(frame))


def test_bad_magic_rejected():
    frame = b"NOPE" + reference_frame()[4:]
    with pytest.raises(ProtocolError, match="magic"):
        decode_frame(frame)


def test_unknown_message_type_rejected():
    frame = bytearray(reference_frame())
    struct.pack_into("<H", frame, 6, 999)  # after magic + version
    with pytest.raises(ProtocolError, match="unknown message type"):
        decode_frame(bytes(frame))


def test_trailing_garbage_rejected():
    with pytest.raises(ProtocolError, match="oversized"):
        decode_frame(reference_frame() + b"xx")


def test_corrupt_meta_rejected():
    frame = bytearray(encode_frame(AckReply()))
    frame[-2] = 0xFF  # stomp inside the JSON meta
    with pytest.raises(ProtocolError):
        decode_frame(bytes(frame))


# ---------------------------------------------------------------------------
# socket framing helpers
# ---------------------------------------------------------------------------

def test_send_recv_roundtrip_over_real_socket():
    server, client = socket.socketpair()
    batch = ComputeBatch(
        epoch=2, subs=[SubQuery(s=np.array([5], dtype=np.int64), t=np.array([6], dtype=np.int64))]
    )
    received = []

    def serve():
        received.append(recv_message(server))
        send_message(server, AckReply())

    thread = threading.Thread(target=serve)
    thread.start()
    send_message(client, batch)
    reply = recv_message(client)
    thread.join(5)
    server.close()
    client.close()
    assert isinstance(reply, AckReply)
    assert_same(received[0], batch)


def test_recv_message_rejects_peer_disconnect_mid_frame():
    server, client = socket.socketpair()
    frame = encode_frame(AckReply())
    client.sendall(struct.pack("<I", len(frame)) + frame[: len(frame) // 2])
    client.close()
    with pytest.raises(ProtocolError, match="truncated"):
        recv_message(server)
    server.close()


# ---------------------------------------------------------------------------
# CRC hardening: truncation vs corruption classification
# ---------------------------------------------------------------------------

def test_flipped_body_byte_is_classified_as_corruption():
    """A complete frame with a damaged payload byte fails the CRC and
    raises the *corruption* subclass — the 'peer is sending garbage'
    signal, distinct from a died-mid-frame truncation."""
    frame = bytearray(
        encode_frame(
            Republish(
                epoch=3,
                values=np.linspace(0.0, 1.0, 16),
                offsets=np.arange(17, dtype=np.int64),
            )
        )
    )
    frame[-1] ^= 0xFF  # stomp one byte inside the value buffer
    with pytest.raises(ProtocolCorruptionError, match="CRC mismatch"):
        decode_frame(bytes(frame))


def test_flipped_meta_byte_fails_loud():
    """Damage inside the JSON meta raises a ProtocolError subclass —
    either the parse or the CRC catches it, never silence."""
    frame = bytearray(encode_frame(StaleReply(held=1, stamped=2)))
    for i in range(16, len(frame)):
        damaged = bytearray(frame)
        damaged[i] ^= 0x5A
        with pytest.raises(ProtocolError):
            decode_frame(bytes(damaged))


def test_cut_frame_is_classified_as_truncation():
    """Every strict prefix raises the *truncation* subclass (the
    'replica died mid-frame' signal), never the corruption one — the
    CRC check must not run before the structural walk completes."""
    frame = encode_frame(
        ComputeBatch(
            epoch=1,
            subs=[
                SubQuery(
                    s=np.array([0, 1], dtype=np.int64),
                    t=np.array([2, 3], dtype=np.int64),
                )
            ],
        )
    )
    for n in range(len(frame)):
        with pytest.raises(ProtocolTruncationError):
            decode_frame(frame[:n])


def test_health_messages_roundtrip():
    probe = decode_frame(encode_frame(HealthCheck(nonce=41)))
    assert isinstance(probe, HealthCheck) and probe.nonce == 41
    reply = decode_frame(encode_frame(HealthReply(nonce=41, epoch=7, served=99)))
    assert isinstance(reply, HealthReply)
    assert (reply.nonce, reply.epoch, reply.served) == (41, 7, 99)


def test_recv_frame_rejects_oversized_length_prefix():
    server, client = socket.socketpair()
    try:
        client.sendall(struct.pack("<I", (1 << 31) + 5))
        with pytest.raises(ProtocolCorruptionError, match="exceeds"):
            recv_message(server)
    finally:
        server.close()
        client.close()
