"""Serving-layer benchmarks: batch kernel throughput and replay streams.

The kernel group compares three ways to answer the same query set: the
per-pair Python loop, the previous generation's padded ``(n, h)`` label
matrix (kept here as a reference implementation), and the current
zero-copy kernel that gathers straight from the flat CSR label store.
The replay group runs the Zipf-hotspot stream through the full service
in its three cache configurations.

Run under pytest-benchmark for the full protocol, or standalone for the
CI perf-regression gate::

    python benchmarks/bench_service_throughput.py --quick --out BENCH_service.json

The quick mode times the three kernels plus a service replay with
best-of-N wall-clock loops (no pytest-benchmark dependency) and writes
one JSON document that ``check_service_regression.py`` compares against
the committed baseline. It also exercises the k=4 sharded backend:
interleaved monolithic-vs-sharded build timings, uniform and
cross-region query throughput (checked for exact agreement with the
monolithic index), and the update-isolation evidence that an
intra-region batch touches only its owning shard. The same sharded
index is then served through a :class:`ShardWorkerRuntime` worker pool:
batch throughput on both query sets (checked for exact agreement), the
batch-scheduler split counters, and the epoch-broadcast evidence that a
maintenance flush reaches workers as shared-memory *deltas* (no
republish) — and through a :class:`SocketShardRuntime` TCP replica
pool: cross-region throughput, per-batch replica fan-out latency, the
inline-delta sync counters, and a live replica-kill failover drill.
The async group measures the :class:`AsyncDistanceService`
micro-batching win (one concurrent burst vs the same burst awaited
serially) and its admission-control shed count.
The update group times the same double-then-restore batch
protocol through both maintenance engines (frontier-batched array
kernels vs the scalar reference) and the serving-layer flush latency;
``check_service_regression.py`` gates the array-over-reference ratio.
The observability group replays identical query batches through the
null and the enabled observability stacks and reports the overhead
ratio, which the gate holds to single-digit percent. Pass
``--shard-breakdown-out`` to dump the per-shard build-time breakdown
and ``--phase-breakdown-out`` to dump the per-kernel-phase flush-time
breakdown (both uploaded as CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.observability import collect_phases
from repro.observability.timing import best_of


def padded_matrix(index) -> np.ndarray:
    """The labels padded into an inf-filled ``(n, h)`` float64 matrix —
    the storage scheme the flat store replaced, kept as a benchmark
    reference."""
    labels = index.labels
    n = labels.num_vertices
    h = max(1, index.hq.height)
    matrix = np.full((n, h), np.inf, dtype=np.float64)
    for v in range(n):
        row = labels.view(v)
        matrix[v, : len(row)] = row
    return matrix


def padded_kernel(index, matrix: np.ndarray, s: np.ndarray, t: np.ndarray):
    """Reference batch kernel over the padded matrix (two row gathers,
    one add, one masked row-min over the full hierarchy height)."""
    k = index.engine.common_ancestor_counts(s, t)
    columns = np.arange(matrix.shape[1], dtype=np.int64)
    sums = matrix[s] + matrix[t]
    np.copyto(sums, np.inf, where=columns >= k[:, None])
    out = sums.min(axis=1)
    out[s == t] = 0.0
    return out


# ---------------------------------------------------------------------------
# pytest-benchmark groups
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone quick mode
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="service-batch-kernel")
    @pytest.mark.parametrize(
        "mode", ["per-pair-loop", "padded-matrix", "zero-copy"]
    )
    def test_batch_kernel_speedup(benchmark, mode, dataset, dhl_indexes, query_pairs):
        index = dhl_indexes[dataset]
        pairs = query_pairs[dataset]
        arr = np.asarray(pairs, dtype=np.int64)
        s, t = arr[:, 0].copy(), arr[:, 1].copy()
        benchmark.extra_info["queries"] = len(pairs)

        if mode == "per-pair-loop":
            distance = index.engine.distance

            def run():
                for pair in pairs:
                    distance(*pair)

        elif mode == "padded-matrix":
            matrix = padded_matrix(index)  # padded once, used per call

            def run():
                padded_kernel(index, matrix, s, t)

        else:

            def run():
                index.engine._batch_kernel(s, t, want_hubs=False)

        benchmark(run)

    MODE_KWARGS = {
        "uncached": dict(cache_capacity=1),
        "cached": dict(cache_capacity=65_536),
        "fine-grained": dict(cache_capacity=65_536, fine_grained_eviction=True),
    }

    @pytest.mark.benchmark(group="service-throughput")
    @pytest.mark.parametrize("mode", sorted(MODE_KWARGS))
    def test_replay_hotspot_stream(benchmark, mode, dataset, graphs):
        from repro.service import DistanceService, replay, zipf_hotspot_traffic

        graph = graphs[dataset]
        kwargs = MODE_KWARGS[mode]

        def setup():
            index = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
            service = DistanceService(index, **kwargs)
            events = zipf_hotspot_traffic(
                index.graph, query_batches=20, batch_size=200, seed=1
            )
            return (service, events), {}

        def run(service, events):
            report = replay(service, events)
            benchmark.extra_info.setdefault("queries", report.queries)
            benchmark.extra_info["hit_rate"] = round(
                report.service.cache.hit_rate, 4
            )

        benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# standalone quick mode (CI perf-regression gate)
# ---------------------------------------------------------------------------

def run_update_quick(
    graph, repeats: int, batch_size: int = 256
) -> tuple[dict, dict]:
    """Maintenance-engine measurements: batch-update throughput + flush.

    Times the same double-then-restore update protocol (one increase
    batch at 2x weight, one decrease batch back — state-invariant, so
    best-of-N loops are honest) through the frontier-batched array
    engine and the scalar reference engine, plus the serving-layer
    ``DistanceService.flush`` latency on the array engine — the number
    that bounds ``ShardWorkerRuntime`` epoch-broadcast staleness.

    When numba is importable the numba-compiled engine joins the
    matrix and the compiled/array throughput ratio is reported
    (``update_compiled_over_array``, gated on the CI numba leg);
    without numba the compiled leg is skipped with a notice and the
    ratio key is simply absent.
    """
    import repro.labelling.compiled as compiled_pkg
    from repro.service import DistanceService

    edges = list(graph.edges())
    rng = np.random.default_rng(7)
    picked = rng.choice(len(edges), size=min(batch_size, len(edges)), replace=False)
    batch = [edges[i] for i in picked]
    up_batch = [(u, v, 2 * w) for u, v, w in batch]
    down_batch = [(u, v, w) for u, v, w in batch]
    changes_per_roundtrip = 2 * len(batch)

    engines = ["array", "reference"]
    if compiled_pkg.warmup_kernels():
        engines.append("compiled")
    else:
        print(
            "NOTE numba not available — skipping the compiled maintenance "
            "leg (update_compiled_over_array will be absent)"
        )

    throughput = {}
    indexes = {}
    for engine in engines:
        index = DHLIndex.build(graph.copy(), DHLConfig(seed=0, engine=engine))
        indexes[engine] = index

        def roundtrip(index=index):
            index.increase(up_batch)
            index.decrease(down_batch)

        roundtrip()  # warm caches / lazy views
        best = best_of(roundtrip, repeats)
        throughput[engine] = changes_per_roundtrip / best

    # Labels must agree after identical protocols on every engine.
    for engine in engines[1:]:
        if not indexes["array"].labels.equals(indexes[engine].labels):
            raise AssertionError(
                f"array engine labels diverge from {engine}"
            )

    service = DistanceService(indexes["array"])

    def flush_roundtrip():
        service.submit_many(up_batch)
        service.flush()
        service.submit_many(down_batch)
        service.flush()

    flush_roundtrip()
    flush_seconds = best_of(flush_roundtrip, repeats) / 2  # per flush

    # One more instrumented roundtrip: collect_phases() arms the kernel
    # phase marks, so the breakdown shows where a flush spends its time
    # (drain / apply / evict plus the per-kernel relaxation phases).
    with collect_phases() as collector:
        flush_roundtrip()
    service.close()
    phases = {
        "phase_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(collector.as_dict().items())
        },
        "phase_counts": dict(sorted(collector.counts.items())),
        "flushes_profiled": 2,
    }

    metrics = {
        "update_throughput_pairs_per_s": round(throughput["array"], 1),
        "update_reference_pairs_per_s": round(throughput["reference"], 1),
        "update_array_over_reference": round(
            throughput["array"] / max(throughput["reference"], 1e-9), 3
        ),
        "flush_latency_ms": round(flush_seconds * 1000, 3),
    }
    if "compiled" in throughput:
        metrics["update_compiled_pairs_per_s"] = round(
            throughput["compiled"], 1
        )
        metrics["update_compiled_over_array"] = round(
            throughput["compiled"] / max(throughput["array"], 1e-9), 3
        )
    return metrics, phases


def run_sharded_quick(
    graph,
    index: DHLIndex,
    num_pairs: int,
    repeats: int,
    k: int = 4,
) -> tuple[dict, dict]:
    """Sharded backend measurements: build, queries, update isolation.

    Returns ``(metrics, breakdown)`` — flat gateable metrics plus the
    per-shard build-time breakdown uploaded as a CI artifact. The
    monolithic and sharded build timings are *interleaved* (alternating
    best-of-N samples) so a transient load spike on a shared runner
    cannot skew the speedup ratio by hitting only one side.
    """
    from repro.core.sharded import ShardedDHLIndex
    from repro.experiments.workloads import cross_region_pairs, random_query_pairs

    workers = min(k, os.cpu_count() or 1)
    build_repeats = max(3, repeats // 3)

    def build() -> ShardedDHLIndex:
        return ShardedDHLIndex.build(
            graph.copy(), k=k, config=DHLConfig(seed=0), build_workers=workers
        )

    sharded = build()
    mono_times: list[float] = []
    shard_times: list[float] = []
    for _ in range(build_repeats):
        start = time.perf_counter()
        DHLIndex.build(graph.copy(), DHLConfig(seed=0))
        mono_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        build()
        shard_times.append(time.perf_counter() - start)
    monolithic_build_seconds = min(mono_times)
    sharded_build_seconds = min(shard_times)
    stats = sharded.stats()

    uniform = random_query_pairs(graph.num_vertices, num_pairs, seed=1)
    commute = cross_region_pairs(
        sharded.region_of,
        num_pairs,
        seed=2,
        boundary=sharded.partition.boundary,
    )
    if not np.array_equal(index.distances(uniform), sharded.distances(uniform)):
        raise AssertionError("sharded backend disagrees with monolithic (uniform)")
    if not np.array_equal(index.distances(commute), sharded.distances(commute)):
        raise AssertionError("sharded backend disagrees with monolithic (commute)")

    sharded_uniform_qps = num_pairs / best_of(
        lambda: sharded.distances(uniform), repeats
    )
    sharded_cross_qps = num_pairs / best_of(
        lambda: sharded.distances(commute), repeats
    )
    mono_cross_qps = num_pairs / best_of(
        lambda: index.distances(commute), repeats
    )

    # Update isolation: one intra-region batch must touch one shard.
    from repro.experiments.sharded import intra_region_update_batch

    rid, batch = intra_region_update_batch(sharded, size=16)
    update_stats = sharded.update(batch)
    touched = update_stats.touched_shards
    restore = [(u, v, graph.weight(u, v)) for u, v, _ in batch]
    sharded.update(restore)

    worker_metrics, worker_breakdown = run_worker_pool_quick(
        sharded,
        index,
        uniform,
        commute,
        repeats,
        sharded_uniform_qps=sharded_uniform_qps,
        sharded_cross_qps=sharded_cross_qps,
    )

    socket_metrics, socket_breakdown = run_socket_quick(
        sharded, index, commute, repeats
    )

    metrics = {
        "monolithic_build_seconds": round(monolithic_build_seconds, 3),
        "sharded_build_seconds": round(sharded_build_seconds, 3),
        "sharded_build_speedup": round(
            monolithic_build_seconds / max(sharded_build_seconds, 1e-9), 3
        ),
        "sharded_uniform_qps": round(sharded_uniform_qps, 1),
        "sharded_cross_qps": round(sharded_cross_qps, 1),
        "cross_shard_slowdown": round(
            mono_cross_qps / max(sharded_cross_qps, 1e-9), 3
        ),
        "update_touched_shards": len(touched),
        **worker_metrics,
        **socket_metrics,
    }
    breakdown = {
        "k": sharded.k,
        "worker_pool": worker_breakdown,
        "socket_pool": socket_breakdown,
        "build_workers": workers,
        "parallel_build": stats.build.parallel,
        "partition_seconds": round(stats.partition_seconds, 4),
        "overlay_seconds": round(stats.overlay_seconds, 4),
        "per_shard_build_seconds": [
            round(s, 4) for s in stats.build.per_shard_seconds
        ],
        "per_shard_vertices": [len(v) for v in sharded.shard_vertices],
        "boundary_vertices": stats.boundary_vertices,
        "cut_edges": stats.cut_edges,
        "overlay_edges": stats.overlay_edges,
        "update_target_shard": rid,
        "update_touched_shards": touched,
        "update_labels_changed_per_shard": {
            str(sid): s.labels_changed
            for sid, s in update_stats.per_shard.items()
        },
    }
    return metrics, breakdown


def run_worker_pool_quick(
    sharded,
    index: DHLIndex,
    uniform,
    commute,
    repeats: int,
    *,
    sharded_uniform_qps: float,
    sharded_cross_qps: float,
) -> tuple[dict, dict]:
    """Worker-pool runtime measurements over the already-built shards.

    Returns ``(metrics, breakdown)``: batch throughput on the same pair
    sets the in-process backend answered (exact agreement enforced),
    the in-process-to-worker-pool ratio the gate checks (interpreted
    against ``meta.cpu_count`` — a single-core runner can only measure
    scheduling overhead, never a parallel win), and the scheduler-split
    plus epoch-broadcast counters. The maintenance probe asserts the
    worker sync used the delta path: one shared-memory delta broadcast,
    zero whole-buffer republishes.
    """
    from repro.service.workers import ShardWorkerRuntime

    num_pairs = len(uniform)
    runtime = ShardWorkerRuntime(sharded)
    try:
        if not np.array_equal(index.distances(uniform), runtime.distances(uniform)):
            raise AssertionError("worker pool disagrees with monolithic (uniform)")
        if not np.array_equal(index.distances(commute), runtime.distances(commute)):
            raise AssertionError("worker pool disagrees with monolithic (commute)")

        worker_uniform_qps = num_pairs / best_of(
            lambda: runtime.distances(uniform), repeats
        )
        worker_cross_qps = num_pairs / best_of(
            lambda: runtime.distances(commute), repeats
        )

        # Maintenance through the runtime: the flush must reach workers
        # as an in-place delta plus an epoch broadcast, not a republish.
        from repro.experiments.sharded import intra_region_update_batch

        graph = sharded.graph
        rid, batch = intra_region_update_batch(sharded, size=16)
        restore = [(u, v, graph.weight(u, v)) for u, v, _ in batch]
        runtime.apply_update(batch)
        index.update(batch)
        if not np.array_equal(
            index.distances(commute), runtime.distances(commute)
        ):
            raise AssertionError("worker pool stale after epoch broadcast")
        runtime.apply_update(restore)
        index.update(restore)
        scheduler = runtime.stats.as_dict()

        metrics = {
            "worker_uniform_qps": round(worker_uniform_qps, 1),
            "worker_cross_qps": round(worker_cross_qps, 1),
            "worker_pool_over_inprocess": round(
                worker_cross_qps / max(sharded_cross_qps, 1e-9), 3
            ),
            "worker_pool_over_inprocess_uniform": round(
                worker_uniform_qps / max(sharded_uniform_qps, 1e-9), 3
            ),
            "worker_republishes": scheduler["republishes"],
            "worker_delta_syncs": scheduler["delta_syncs"],
        }
        breakdown = {
            "workers": runtime.worker_count,
            "backend": runtime.backend,
            "scheduler": scheduler,
        }
        return metrics, breakdown
    finally:
        runtime.close()


def run_socket_quick(
    sharded, index: DHLIndex, commute, repeats: int, replicas: int = 2
) -> tuple[dict, dict]:
    """Socket-replica runtime measurements over the already-built shards.

    Returns ``(metrics, breakdown)``: cross-region batch throughput
    through the TCP replica pool (exact agreement with the monolithic
    index enforced), the per-batch replica fan-out latency (one framed
    round trip to every shard's chosen replica), the delta-broadcast
    evidence that a maintenance flush reaches replicas as inline
    protocol deltas, and a live failover drill — one replica of shard 0
    is hard-killed and the very next batch must still answer exactly,
    with the failover counted.
    """
    from repro.experiments.sharded import intra_region_update_batch
    from repro.service.socket_runtime import SocketShardRuntime

    num_pairs = len(commute)
    fan_out_pairs = commute[:256]
    # Supervision clock = wall clock + a hand-advanced offset, so the
    # respawn drill can skip past the backoff window without sleeping.
    offset = [0.0]
    runtime = SocketShardRuntime(
        sharded, replicas=replicas, clock=lambda: time.monotonic() + offset[0]
    )
    try:
        expected = index.distances(commute)
        if not np.array_equal(expected, runtime.distances(commute)):
            raise AssertionError("socket pool disagrees with monolithic")

        socket_cross_qps = num_pairs / best_of(
            lambda: runtime.distances(commute), repeats
        )
        fan_out_seconds = best_of(
            lambda: runtime.distances(fan_out_pairs), repeats
        )

        # Maintenance: the flush must reach every replica as an inline
        # EpochDelta frame, not a whole-buffer republish.
        graph = sharded.graph
        rid, batch = intra_region_update_batch(sharded, size=16)
        restore = [(u, v, graph.weight(u, v)) for u, v, _ in batch]
        runtime.apply_update(batch)
        index.update(batch)
        if not np.array_equal(index.distances(commute), runtime.distances(commute)):
            raise AssertionError("socket pool stale after delta broadcast")
        runtime.apply_update(restore)
        index.update(restore)
        expected = index.distances(commute)

        # Failover drill: kill one replica of shard 0, next batch must
        # fail over and still answer exactly. The first post-kill batch
        # pays the discovery + retry cost — that is the recovery number.
        victim = runtime._groups[0][0]
        victim.process.terminate()
        victim.process.join(10)
        started = time.perf_counter()
        first = runtime.distances(commute)
        failover_recovery_ms = (time.perf_counter() - started) * 1000
        if not np.array_equal(expected, first):
            raise AssertionError("socket pool lost requests on failover")
        for _ in range(replicas - 1):  # round-robin past the corpse
            if not np.array_equal(expected, runtime.distances(commute)):
                raise AssertionError("socket pool lost requests on failover")
        scheduler = runtime.stats.as_dict()
        if scheduler["failovers"] < 1:
            raise AssertionError("replica kill never triggered a failover")

        # Respawn drill: one forced supervision poll marks the dead
        # slot down and arms its backoff; advancing the clock offset
        # past the ceiling lets the next poll respawn it — downtime is
        # the supervisor's own spawn+handshake measurement.
        runtime.supervisor.poll(force=True)
        offset[0] += runtime.supervisor.policy.max_delay
        summary = runtime.supervisor.poll(force=True)
        if summary.get("respawned", 0) < 1:
            raise AssertionError(
                f"supervision poll never respawned the killed replica: "
                f"{summary}"
            )
        respawn_downtime_ms = max(runtime.supervisor.recovery_ms)
        if not np.array_equal(expected, runtime.distances(commute)):
            raise AssertionError("respawned replica answered wrongly")
        scheduler = runtime.stats.as_dict()

        metrics = {
            "socket_cross_qps": round(socket_cross_qps, 1),
            "socket_fanout_ms": round(fan_out_seconds * 1000, 3),
            "socket_failovers": scheduler["failovers"],
            "socket_resyncs": scheduler["resyncs"],
            "socket_respawns": scheduler["respawns"],
            "socket_delta_syncs": scheduler["delta_syncs"],
            "socket_republishes": scheduler["republishes"],
            "failover_recovery_ms": round(failover_recovery_ms, 3),
            "respawn_downtime_ms": round(respawn_downtime_ms, 3),
        }
        breakdown = {
            "replicas": replicas,
            "backend": runtime.backend,
            "fanout_batch_pairs": len(fan_out_pairs),
            "scheduler": scheduler,
        }
        return metrics, breakdown
    finally:
        runtime.close()


def run_async_quick(index, pairs, repeats: int, burst: int = 256) -> dict:
    """Async-frontend measurements: micro-batch folding + admission.

    The acceptance number is ``async_microbatch_over_serial``: the same
    ``burst`` of single-pair awaits issued concurrently (one gather —
    the dispatcher folds everything that queues while a batch executes)
    versus awaited one by one (serial — every pair pays a full executor
    round trip). The shed probe runs the burst against a frontend with
    a tiny queue depth and reports how many requests admission control
    refused — the bounded-backlog evidence, next to the counters the
    metrics registry exports.
    """
    import asyncio

    from repro.service import AsyncDistanceService, DistanceService
    from repro.exceptions import ServiceOverloadError

    singles = [pairs[i % len(pairs)] for i in range(burst)]

    async def serial(service) -> None:
        async with AsyncDistanceService(service) as frontend:
            for s, t in singles:
                await frontend.distance(s, t)

    async def concurrent(service):
        async with AsyncDistanceService(service) as frontend:
            await asyncio.gather(
                *(frontend.distance(s, t) for s, t in singles)
            )
            return frontend.stats

    async def shed_burst(service) -> int:
        async with AsyncDistanceService(service, max_queue_depth=16) as frontend:
            results = await asyncio.gather(
                *(frontend.distance(s, t) for s, t in singles),
                return_exceptions=True,
            )
        return sum(isinstance(r, ServiceOverloadError) for r in results)

    with DistanceService(index, cache_capacity=1) as service:
        serial_seconds = best_of(
            lambda: asyncio.run(serial(service)), max(3, repeats // 3)
        )
        stats = None

        def run_concurrent():
            nonlocal stats
            stats = asyncio.run(concurrent(service))

        concurrent_seconds = best_of(run_concurrent, max(3, repeats // 3))
        shed = asyncio.run(shed_burst(service))

    return {
        "async_serial_qps": round(burst / serial_seconds, 1),
        "async_concurrent_qps": round(burst / concurrent_seconds, 1),
        "async_microbatch_over_serial": round(
            serial_seconds / max(concurrent_seconds, 1e-9), 3
        ),
        "async_merge_ratio": round(stats.merge_ratio, 3),
        "async_batches_per_burst": stats.batches,
        "async_shed_count": shed,
    }


def run_observability_quick(index, pairs, repeats: int) -> dict:
    """Observability overhead: the instrumented hot path, null vs live.

    Replays the same uncached query batches through two services over
    the same index — one with the default null observability stack, one
    with metrics enabled (tracing off: the scrape configuration) — and
    reports the wall-clock ratio. ``check_service_regression.py`` gates
    the ratio: the null-object design only holds its zero-overhead
    promise if an enabled registry stays within single-digit percent of
    the disabled path on identical work.
    """
    from repro.service import DistanceService, Observability

    chunk = 512
    batches = [pairs[i : i + chunk] for i in range(0, len(pairs), chunk)]

    def measure(observability) -> float:
        service = DistanceService(
            index, cache_capacity=1, observability=observability
        )

        def once():
            for batch in batches:
                service.distances(batch)

        once()  # warm caches / lazy views
        best = best_of(once, repeats)
        service.close()
        return best

    disabled = measure(None)
    enabled = measure(Observability.enabled())
    return {
        "obs_disabled_replay_seconds": round(disabled, 4),
        "obs_enabled_replay_seconds": round(enabled, 4),
        "observability_overhead_ratio": round(enabled / max(disabled, 1e-9), 3),
    }


def run_structural_quick(graph, repeats: int, batch_size: int = 128) -> dict:
    """Structural-batch measurements: delete/restore throughput, the
    insert fast-path speedup, and compaction latency.

    * ``structural_batch_pairs_per_s``: ops/second through a
      state-invariant delete-then-restore roundtrip (each deletion is an
      inf-weight increase, each restore a decrease back), so best-of-N
      loops are honest.
    * ``insert_fastpath_ratio``: one comparable-endpoint link insertion
      (a single construction event — the latency a serving flush pays)
      timed on a default index (frontier-kernel fast path) and on one
      built with ``insert_closure_limit=0`` (every insertion forced
      onto the fallback-rebuild tier); the ratio is fallback/fast — the
      CI gate requires the fast path to be at least 5x faster. Each
      timing runs on a freshly built index (same seed, same hierarchy)
      because insertions mutate state; a larger 4-link batch then
      cross-checks that both tiers answer identically.
    * ``compaction_ms``: one compaction pass over the dead slots the
      deletion batch left behind.
    """
    probe = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    n = graph.num_vertices
    hq = probe.hq

    # Comparable non-adjacent endpoint pairs: the fast-path eligible set.
    candidates = []
    seen = set()
    for a in range(n):
        if len(candidates) >= 4:
            break
        for b in range(a + 1, n):
            if (
                (a, b) not in seen
                and hq.comparable(a, b)
                and not graph.has_edge(a, b)
            ):
                seen.add((a, b))
                candidates.append((a, b))
                break
    if not candidates:
        raise AssertionError(
            "no comparable non-adjacent pairs on the quick dataset — "
            "cannot measure the insert fast path"
        )
    # Realistic link weights: slightly better than the existing route,
    # not a teleporter that rewrites half the labelling.
    inserts = [
        (a, b, float(max(1.0, round(probe.distance(a, b) * 0.95))))
        for a, b in candidates
    ]

    def insertion_leg(config, batch, rounds) -> tuple[float, DHLIndex]:
        best = math.inf
        index = None
        for _ in range(rounds):
            index = DHLIndex.build(graph.copy(), config)
            start = time.perf_counter()
            index.apply_batch(insertions=batch)
            best = min(best, time.perf_counter() - start)
        return best, index

    rounds = max(3, repeats)
    rebuild_cfg = DHLConfig(seed=0, insert_closure_limit=0)
    # The gated ratio is the per-event latency: one construction event.
    fast_seconds, _ = insertion_leg(DHLConfig(seed=0), inserts[:1], rounds)
    rebuild_seconds, _ = insertion_leg(rebuild_cfg, inserts[:1], rounds)
    # Tier parity on the larger batch: both must answer identically.
    _, fast_index = insertion_leg(DHLConfig(seed=0), inserts, 1)
    _, rebuild_index = insertion_leg(rebuild_cfg, inserts, 1)
    if not fast_index.structural_counters.get("fastpath_inserts"):
        raise AssertionError("fast-path leg fell back to a rebuild")
    if not rebuild_index.structural_counters.get("fallback_rebuilds"):
        raise AssertionError("rebuild leg unexpectedly took the fast path")
    # Both legs must answer identically after the same insertions.
    check_rng = np.random.default_rng(5)
    for s, t in check_rng.integers(0, n, size=(32, 2)):
        a = fast_index.distance(int(s), int(t))
        b = rebuild_index.distance(int(s), int(t))
        if not (a == b or (math.isinf(a) and math.isinf(b))):
            raise AssertionError(
                f"fast-path and rebuild legs disagree at ({s}, {t})"
            )

    # Delete/restore roundtrip throughput on the probe index.
    edges = [(u, v, w) for u, v, w in graph.edges() if math.isfinite(w)]
    rng = np.random.default_rng(11)
    picked = rng.choice(
        len(edges), size=min(batch_size, len(edges) // 2), replace=False
    )
    deletions = [(edges[i][0], edges[i][1]) for i in picked]
    restores = [edges[i] for i in picked]
    ops_per_roundtrip = 2 * len(deletions)

    def roundtrip():
        probe.apply_batch(deletions=deletions)
        probe.apply_batch(insertions=restores)

    roundtrip()  # warm caches
    structural_pairs_per_s = ops_per_roundtrip / best_of(roundtrip, repeats)

    # Compaction latency over the dead slots one deletion batch leaves.
    probe.apply_batch(deletions=deletions)
    start = time.perf_counter()
    compaction = probe.compact()
    compact_seconds = time.perf_counter() - start
    probe.apply_batch(insertions=restores)

    return {
        "structural_batch_pairs_per_s": round(structural_pairs_per_s, 1),
        "insert_fastpath_ms": round(fast_seconds * 1000, 3),
        "insert_rebuild_ms": round(rebuild_seconds * 1000, 3),
        "insert_fastpath_ratio": round(
            rebuild_seconds / max(fast_seconds, 1e-9), 3
        ),
        "compaction_ms": round(compact_seconds * 1000, 3),
        "compaction_slots_reclaimed": compaction.dead_slots_reclaimed,
    }


def run_quick(
    dataset: str = "FLA",
    num_pairs: int = 20_000,
    repeats: int = 9,
) -> dict:
    """Measure kernel and replay throughput; returns the JSON payload."""
    from repro.datasets.synthetic import load_dataset
    from repro.experiments.workloads import random_query_pairs
    from repro.service import DistanceService, replay, zipf_hotspot_traffic

    graph = load_dataset(dataset)
    index = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
    pairs = random_query_pairs(graph.num_vertices, num_pairs, seed=1)
    arr = np.asarray(pairs, dtype=np.int64)
    s, t = arr[:, 0].copy(), arr[:, 1].copy()
    engine = index.engine

    # Scalar loop on a subset (it is orders of magnitude slower).
    loop_pairs = pairs[: max(1, num_pairs // 10)]
    distance = engine.distance

    def per_pair():
        for pair in loop_pairs:
            distance(*pair)

    matrix = padded_matrix(index)
    reference = padded_kernel(index, matrix, s, t)
    current = engine._batch_kernel(s, t, want_hubs=False)[0]
    if not np.array_equal(reference, current):
        raise AssertionError("zero-copy kernel disagrees with padded reference")

    per_pair_qps = len(loop_pairs) / best_of(per_pair, max(3, repeats // 3))
    padded_qps = num_pairs / best_of(
        lambda: padded_kernel(index, matrix, s, t), repeats
    )
    zero_copy_qps = num_pairs / best_of(
        lambda: engine._batch_kernel(s, t, want_hubs=False), repeats
    )

    # Compiled query gather: same pairs, same flat store, fused numba
    # loop. Ratio keys are absent (with a notice) when numba is missing,
    # so the no-numba baseline and the CI numba leg stay comparable.
    compiled_metrics = {}
    import repro.labelling.compiled as compiled_pkg

    if compiled_pkg.warmup_kernels():
        from repro.labelling.query import QueryEngine

        compiled_engine = QueryEngine(index.hq, index.labels, engine="compiled")
        compiled_out = compiled_engine._batch_kernel(s, t, want_hubs=False)[0]
        if not np.array_equal(reference, compiled_out):
            raise AssertionError(
                "compiled query gather disagrees with padded reference"
            )
        compiled_qps = num_pairs / best_of(
            lambda: compiled_engine._batch_kernel(s, t, want_hubs=False),
            repeats,
        )
        compiled_metrics = {
            "query_compiled_pairs_per_s": round(compiled_qps, 1),
            "query_compiled_over_array": round(
                compiled_qps / zero_copy_qps, 3
            ),
        }
    else:
        print(
            "NOTE numba not available — skipping the compiled query leg "
            "(query_compiled_over_array will be absent)"
        )

    service = DistanceService(index, cache_capacity=65_536)
    events = zipf_hotspot_traffic(
        index.graph, query_batches=20, batch_size=200, seed=1
    )
    replay_start = time.perf_counter()
    report = replay(service, events)
    replay_qps = report.queries / (time.perf_counter() - replay_start)

    update_metrics, phase_breakdown = run_update_quick(graph, max(3, repeats // 3))

    structural_metrics = run_structural_quick(graph, max(3, repeats // 3))

    obs_metrics = run_observability_quick(index, pairs, repeats)

    async_metrics = run_async_quick(index, pairs, repeats)

    sharded_metrics, sharded_breakdown = run_sharded_quick(
        graph, index, num_pairs, repeats
    )

    return {
        "meta": {
            "dataset": dataset,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "pairs": num_pairs,
            "height": index.hq.height,
            "python": platform.python_version(),
            # The worker-pool gate is interpreted against this: a
            # single-core runner cannot show a parallel win.
            "cpu_count": os.cpu_count() or 1,
            "numba": bool(compiled_pkg.kernels.NUMBA_AVAILABLE),
            "mode": "quick",
        },
        "metrics": {
            "per_pair_qps": round(per_pair_qps, 1),
            "padded_qps": round(padded_qps, 1),
            "zero_copy_qps": round(zero_copy_qps, 1),
            "zero_copy_over_padded": round(zero_copy_qps / padded_qps, 3),
            "zero_copy_over_per_pair": round(zero_copy_qps / per_pair_qps, 3),
            "replay_qps": round(replay_qps, 1),
            "cache_hit_rate": round(report.service.cache.hit_rate, 4),
            **compiled_metrics,
            **update_metrics,
            **structural_metrics,
            **obs_metrics,
            **async_metrics,
            **sharded_metrics,
        },
        "sharded": sharded_breakdown,
        "phases": phase_breakdown,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run the CI quick profile"
    )
    parser.add_argument("--dataset", default="FLA")
    parser.add_argument("--pairs", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_service.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--shard-breakdown-out", type=Path, default=None,
        help="also write the per-shard build-time breakdown to this path "
        "(uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--phase-breakdown-out", type=Path, default=None,
        help="also write the per-kernel-phase flush-time breakdown to "
        "this path (uploaded as a CI artifact)",
    )
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error(
            "run under pytest for the full protocol, or pass --quick "
            "for the standalone CI profile"
        )
    payload = run_quick(args.dataset, args.pairs, args.repeats)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    if args.shard_breakdown_out is not None:
        args.shard_breakdown_out.write_text(
            json.dumps(payload["sharded"], indent=2) + "\n"
        )
    if args.phase_breakdown_out is not None:
        args.phase_breakdown_out.write_text(
            json.dumps(payload["phases"], indent=2) + "\n"
        )
    print(json.dumps(payload["metrics"], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
