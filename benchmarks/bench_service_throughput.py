"""Serving-layer benchmarks: batch kernel speedup and replay throughput.

The first group quantifies the satellite claim of the serving PR: the
vectorised label-matrix kernel versus the seed's per-pair Python loop on
the same 2,000-pair query set. The second group replays the Zipf-hotspot
stream through the full service in its three configurations.
"""

from __future__ import annotations

import pytest

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.service import DistanceService, replay, zipf_hotspot_traffic


@pytest.mark.benchmark(group="service-batch-kernel")
@pytest.mark.parametrize("mode", ["per-pair-loop", "vectorised"])
def test_batch_kernel_speedup(benchmark, mode, dataset, dhl_indexes, query_pairs):
    index = dhl_indexes[dataset]
    pairs = query_pairs[dataset]
    benchmark.extra_info["queries"] = len(pairs)

    if mode == "per-pair-loop":
        distance = index.engine.distance

        def run():
            for s, t in pairs:
                distance(s, t)

    else:
        index.engine.label_matrix()  # pad once, as the service does per epoch

        def run():
            index.distances(pairs)

    benchmark(run)


MODE_KWARGS = {
    "uncached": dict(cache_capacity=1),
    "cached": dict(cache_capacity=65_536),
    "fine-grained": dict(cache_capacity=65_536, fine_grained_eviction=True),
}


@pytest.mark.benchmark(group="service-throughput")
@pytest.mark.parametrize("mode", sorted(MODE_KWARGS))
def test_replay_hotspot_stream(benchmark, mode, dataset, graphs):
    graph = graphs[dataset]
    kwargs = MODE_KWARGS[mode]

    def setup():
        index = DHLIndex.build(graph.copy(), DHLConfig(seed=0))
        service = DistanceService(index, **kwargs)
        events = zipf_hotspot_traffic(
            index.graph, query_batches=20, batch_size=200, seed=1
        )
        return (service, events), {}

    def run(service, events):
        report = replay(service, events)
        benchmark.extra_info.setdefault("queries", report.queries)
        benchmark.extra_info["hit_rate"] = round(
            report.service.cache.hit_rate, 4
        )

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
