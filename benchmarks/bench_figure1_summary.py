"""Figure 1 (summary table): DCH vs IncH2H vs DHL on the largest networks.

Paper shape to reproduce: DCH updates are the fastest but its queries are
orders of magnitude slower; DHL beats IncH2H on updates (~3-4x) and
queries (~2-4x).
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import double_weights, restore_weights


def _inc(index, batch):
    return lambda: index.increase(double_weights(batch))


def _restore(index, batch):
    return lambda: index.decrease(restore_weights(batch))


@pytest.mark.benchmark(group="figure1-query")
@pytest.mark.parametrize("method", ["DHL", "IncH2H", "DCH"])
def test_query(
    benchmark, method, large_dataset, dhl_indexes, inch2h_indexes, dch_indexes,
    query_pairs,
):
    index = {
        "DHL": dhl_indexes,
        "IncH2H": inch2h_indexes,
        "DCH": dch_indexes,
    }[method][large_dataset]
    pairs = query_pairs[large_dataset]
    pairs = pairs[:100] if method == "DCH" else pairs[:1000]

    def run():
        distance = index.distance
        for s, t in pairs:
            distance(s, t)

    benchmark.extra_info["queries"] = len(pairs)
    benchmark(run)


@pytest.mark.benchmark(group="figure1-update")
@pytest.mark.parametrize("direction", ["increase", "decrease"])
@pytest.mark.parametrize("method", ["DHL", "IncH2H", "DCH"])
def test_update(
    benchmark, method, direction, large_dataset,
    dhl_indexes, inch2h_indexes, dch_indexes, update_batches,
):
    index = {
        "DHL": dhl_indexes,
        "IncH2H": inch2h_indexes,
        "DCH": dch_indexes,
    }[method][large_dataset]
    batch = update_batches[large_dataset]
    if direction == "increase":
        target, reset = _inc(index, batch), _restore(index, batch)
    else:
        target, reset = _restore(index, batch), _inc(index, batch)

    def setup():
        reset()  # bring weights to the pre-measurement state

    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.pedantic(target, setup=setup, rounds=5, iterations=1)
    restore_state = _restore(index, batch)
    restore_state()
