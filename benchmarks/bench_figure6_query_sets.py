"""Figure 6: query time over distance-stratified query sets Q1..Q10.

Paper shape to reproduce: DHL and IncH2H are comparable on short-range
queries; DHL pulls ahead as query distance grows (fewer common ancestors
at higher hierarchy levels).
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import distance_stratified_queries

QUERY_SETS = [1, 5, 10]  # Q1 (short), Q5 (medium), Q10 (diameter-scale)


@pytest.fixture(scope="module")
def stratified(dhl_indexes, graphs):
    out = {}
    for name, index in dhl_indexes.items():
        out[name] = distance_stratified_queries(
            index.distance, graphs[name].num_vertices, per_set=200, seed=6
        )
    return out


@pytest.mark.benchmark(group="figure6")
@pytest.mark.parametrize("q", QUERY_SETS)
@pytest.mark.parametrize("method", ["DHL", "IncH2H"])
def test_query_set(
    benchmark, method, q, dataset, dhl_indexes, inch2h_indexes, stratified
):
    index = (dhl_indexes if method == "DHL" else inch2h_indexes)[dataset]
    pairs = stratified[dataset][q - 1]
    if not pairs:
        pytest.skip(f"{dataset} has no pairs in distance bucket Q{q}")

    def run():
        distance = index.distance
        for s, t in pairs:
            distance(s, t)

    benchmark.extra_info["pairs"] = len(pairs)
    benchmark(run)
