"""Shared fixtures for the benchmark suite.

Benchmarks run on a *quick profile* of the dataset suite by default (the
four smallest networks at the default 1/1000 scale) so that
``pytest benchmarks/ --benchmark-only`` completes in minutes. Set
``REPRO_BENCH_DATASETS=NY,CAL,USA`` and/or ``REPRO_SCALE`` to rescale —
at full DIMACS scale these benches regenerate the paper's tables
directly. The experiment CLI (``repro-experiments``) runs the complete
protocol; these benches regenerate each table/figure's measurement in
pytest-benchmark form.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.dch import DCHIndex
from repro.baselines.inch2h import IncH2HIndex
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.datasets.synthetic import load_dataset
from repro.experiments.workloads import sample_update_batches

DEFAULT_DATASETS = "NY,BAY,COL,FLA"


def quiet(fn):
    """Wrap a callable so it returns None (pytest-benchmark treats a
    truthy ``setup`` return value as the target's arguments)."""

    def wrapper():
        fn()

    return wrapper


def bench_dataset_names() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_DATASETS", DEFAULT_DATASETS)
    return [name.strip() for name in raw.split(",") if name.strip()]


def large_pair() -> list[str]:
    """The two largest configured datasets (Figure 1's USA/EUR stand-ins)."""
    names = bench_dataset_names()
    return names[-2:] if len(names) >= 2 else names


@pytest.fixture(scope="session")
def graphs():
    return {name: load_dataset(name) for name in bench_dataset_names()}


@pytest.fixture(scope="session")
def dhl_indexes(graphs):
    return {
        name: DHLIndex.build(g.copy(), DHLConfig(seed=0))
        for name, g in graphs.items()
    }


@pytest.fixture(scope="session")
def inch2h_indexes(graphs):
    return {name: IncH2HIndex.build(g.copy()) for name, g in graphs.items()}


@pytest.fixture(scope="session")
def dch_indexes(graphs):
    return {
        name: DCHIndex.build(g.copy()) for name in large_pair()
        for g in [graphs[name]]
    }


@pytest.fixture(scope="session")
def update_batches(graphs):
    """One representative update batch per dataset (paper: 1000 edges)."""
    out = {}
    for name, g in graphs.items():
        size = max(10, min(1_000, g.num_edges // 13))
        out[name] = sample_update_batches(g, 1, size, seed=0)[0]
    return out


@pytest.fixture(scope="session")
def query_pairs(graphs):
    from repro.experiments.workloads import random_query_pairs

    return {
        name: random_query_pairs(g.num_vertices, 2_000, seed=1)
        for name, g in graphs.items()
    }


def pytest_generate_tests(metafunc):
    if "dataset" in metafunc.fixturenames:
        metafunc.parametrize("dataset", bench_dataset_names())
    if "large_dataset" in metafunc.fixturenames:
        metafunc.parametrize("large_dataset", large_pair())
