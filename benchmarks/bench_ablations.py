"""Ablations of DHL's design choices (DESIGN.md §5 expected shapes).

Three choices the paper motivates are isolated here:

* **vertex ordering** — the separator-induced partial order versus the
  min-degree total order used by DCH/IncH2H: the former yields a lower
  hierarchy (fewer label entries) on road networks;
* **balance parameter beta** — construction/query trade-off of
  Definition 4.1;
* **leaf size** — deeper trees mean smaller labels but more partitioning
  work.
"""

from __future__ import annotations

import pytest

from conftest import quiet

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.hierarchy.contraction import contract_in_order, min_degree_order
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.partition.recursive import recursive_bisection


@pytest.mark.benchmark(group="ablation-ordering")
@pytest.mark.parametrize("ordering", ["separator-partial-order", "min-degree"])
def test_contraction_ordering(benchmark, ordering, dataset, graphs):
    """Shortcut counts and contraction time under the two orderings."""
    graph = graphs[dataset]

    if ordering == "min-degree":
        def build():
            order = min_degree_order(graph)
            return contract_in_order(graph, order)
    else:
        tree = recursive_bisection(graph, seed=0)
        hq = QueryHierarchy.from_partition_tree(tree, graph.num_vertices)
        order = hq.contraction_order()

        def build():
            return contract_in_order(graph, order)

    result = benchmark(build)
    benchmark.extra_info["shortcuts"] = result.num_shortcuts


@pytest.mark.benchmark(group="ablation-beta")
@pytest.mark.parametrize("beta", [0.1, 0.2, 0.4])
def test_balance_parameter(benchmark, beta, dataset, graphs, query_pairs):
    """Construction under different balance thresholds; label size logged."""
    graph = graphs[dataset]
    index = benchmark.pedantic(
        lambda: DHLIndex.build(graph.copy(), DHLConfig(beta=beta, seed=0)),
        rounds=2,
        iterations=1,
    )
    index = DHLIndex.build(graph.copy(), DHLConfig(beta=beta, seed=0))
    stats = index.stats()
    benchmark.extra_info["label_entries"] = stats.label_entries
    benchmark.extra_info["height"] = stats.height


@pytest.mark.benchmark(group="ablation-leaf-size")
@pytest.mark.parametrize("leaf_size", [4, 8, 16, 32])
def test_leaf_size(benchmark, leaf_size, dataset, graphs, query_pairs):
    """Query time as a function of the partition leaf size."""
    graph = graphs[dataset]
    index = DHLIndex.build(graph.copy(), DHLConfig(leaf_size=leaf_size, seed=0))
    pairs = query_pairs[dataset][:500]

    def run():
        distance = index.distance
        for s, t in pairs:
            distance(s, t)

    benchmark.extra_info["label_entries"] = index.stats().label_entries
    benchmark.extra_info["height"] = index.stats().height
    benchmark(run)


@pytest.mark.benchmark(group="ablation-parallel-workers")
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_scaling(benchmark, workers, dataset, dhl_indexes, update_batches):
    """Algorithms 6/7 under different worker counts (GIL-bound here)."""
    from repro.experiments.workloads import double_weights, restore_weights

    index = dhl_indexes[dataset]
    batch = update_batches[dataset]
    inc, dec = double_weights(batch), restore_weights(batch)
    benchmark.pedantic(
        lambda: index.increase(inc, workers=workers),
        setup=quiet(lambda: index.decrease(dec)),
        rounds=3,
        iterations=1,
    )
    index.decrease(dec)
