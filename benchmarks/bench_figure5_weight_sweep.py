"""Figure 5: update time as the weight multiplier grows, t+1 in 2..10.

Paper shape to reproduce: both methods' update times grow slowly with the
multiplier; DHL stays well below IncH2H across the sweep; increases cost
more than decreases.
"""

from __future__ import annotations

import pytest

from conftest import quiet

from repro.experiments.workloads import restore_weights, scale_weights

MULTIPLIER_STEPS = [1, 5, 9]  # t values from the paper's x-axis (subset)


@pytest.mark.benchmark(group="figure5")
@pytest.mark.parametrize("t", MULTIPLIER_STEPS)
@pytest.mark.parametrize("method", ["DHL", "IncH2H"])
@pytest.mark.parametrize("direction", ["increase", "decrease"])
def test_weight_sweep(
    benchmark, method, direction, t, dataset,
    dhl_indexes, inch2h_indexes, update_batches,
):
    index = (dhl_indexes if method == "DHL" else inch2h_indexes)[dataset]
    batch = update_batches[dataset]
    factor = float(t + 1)
    inc = scale_weights(batch, factor)
    dec = restore_weights(batch)
    if direction == "increase":
        target = lambda: index.increase(inc)
        setup = quiet(lambda: index.decrease(dec))
    else:
        target = lambda: index.decrease(dec)
        setup = quiet(lambda: index.increase(inc))
    benchmark.extra_info["multiplier"] = factor
    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)
    index.decrease(dec)
