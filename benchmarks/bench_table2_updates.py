"""Table 2: batch & single update times, +/-, sequential & parallel.

Paper shape to reproduce: DHL+/DHL- are ~3-4x faster than IncH2H+/- on
every network; decreases are cheaper than increases for both methods;
single updates cost more per edge than batched ones.
"""

from __future__ import annotations

import pytest

from conftest import quiet

from repro.experiments.workloads import double_weights, restore_weights

METHODS = ["DHL", "IncH2H"]


def _index(method, name, dhl_indexes, inch2h_indexes):
    return dhl_indexes[name] if method == "DHL" else inch2h_indexes[name]


@pytest.mark.benchmark(group="table2-batch-increase")
@pytest.mark.parametrize("method", METHODS)
def test_batch_increase(
    benchmark, method, dataset, dhl_indexes, inch2h_indexes, update_batches
):
    index = _index(method, dataset, dhl_indexes, inch2h_indexes)
    batch = update_batches[dataset]
    inc, dec = double_weights(batch), restore_weights(batch)
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.pedantic(
        lambda: index.increase(inc),
        setup=quiet(lambda: index.decrease(dec)),
        rounds=5,
        iterations=1,
    )
    index.decrease(dec)


@pytest.mark.benchmark(group="table2-batch-decrease")
@pytest.mark.parametrize("method", METHODS)
def test_batch_decrease(
    benchmark, method, dataset, dhl_indexes, inch2h_indexes, update_batches
):
    index = _index(method, dataset, dhl_indexes, inch2h_indexes)
    batch = update_batches[dataset]
    inc, dec = double_weights(batch), restore_weights(batch)
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.pedantic(
        lambda: index.decrease(dec),
        setup=quiet(lambda: index.increase(inc)),
        rounds=5,
        iterations=1,
    )
    index.decrease(dec)


@pytest.mark.benchmark(group="table2-batch-parallel")
@pytest.mark.parametrize("direction", ["increase", "decrease"])
def test_dhl_parallel(
    benchmark, direction, dataset, dhl_indexes, update_batches
):
    """DHL+p / DHL-p: the column-partitioned Algorithms 6/7.

    (Our IncH2H has no safe parallel increase — see its module docstring —
    so the parallel group benches DHL only; the sequential groups carry
    the cross-method comparison.)
    """
    index = dhl_indexes[dataset]
    batch = update_batches[dataset]
    inc, dec = double_weights(batch), restore_weights(batch)
    if direction == "increase":
        target = lambda: index.increase(inc, workers=4)
        setup = quiet(lambda: index.decrease(dec))
    else:
        target = lambda: index.decrease(dec, workers=4)
        setup = quiet(lambda: index.increase(inc))
    benchmark.pedantic(target, setup=setup, rounds=5, iterations=1)
    index.decrease(dec)


@pytest.mark.benchmark(group="table2-single")
@pytest.mark.parametrize("method", METHODS)
def test_single_updates(
    benchmark, method, dataset, dhl_indexes, inch2h_indexes, update_batches
):
    """Single-update setting: one edge doubled then restored per call."""
    index = _index(method, dataset, dhl_indexes, inch2h_indexes)
    batch = update_batches[dataset][:50]

    def cycle():
        for u, v, w in batch:
            index.increase([(u, v, 2 * w)])
            index.decrease([(u, v, w)])

    benchmark.extra_info["updates_per_round"] = 2 * len(batch)
    benchmark(cycle)
