"""Figure 7: batch-update time vs batch size against reconstruction.

Paper shape to reproduce: even the largest batches (5x the standard
batch) update far faster than rebuilding the index from scratch.
"""

from __future__ import annotations

import pytest

from conftest import quiet

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.experiments.workloads import (
    restore_weights,
    sample_update_batches,
    scale_weights,
)

BATCH_FACTORS = [1, 3, 5]  # multiples of the standard batch size


@pytest.fixture(scope="module")
def update_pools(graphs):
    pools = {}
    for name, g in graphs.items():
        base = max(10, min(1_000, g.num_edges // 13))
        size = min(5 * base, g.num_edges)
        pools[name] = sample_update_batches(g, 1, size, seed=7)[0]
    return pools


@pytest.mark.benchmark(group="figure7-updates")
@pytest.mark.parametrize("factor", BATCH_FACTORS)
@pytest.mark.parametrize("direction", ["increase", "decrease"])
def test_batch_scaling(
    benchmark, direction, factor, dataset, dhl_indexes, update_pools
):
    index = dhl_indexes[dataset]
    pool = update_pools[dataset]
    batch = pool[: max(1, factor * len(pool) // 5)]
    inc = scale_weights(batch, 2.0)
    dec = restore_weights(batch)
    if direction == "increase":
        target = lambda: index.increase(inc)
        setup = quiet(lambda: index.decrease(dec))
    else:
        target = lambda: index.decrease(dec)
        setup = quiet(lambda: index.increase(inc))
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)
    index.decrease(dec)


@pytest.mark.benchmark(group="figure7-reconstruction")
def test_reconstruction_reference(benchmark, dataset, graphs):
    """The reference line: full index reconstruction."""
    graph = graphs[dataset]
    benchmark.pedantic(
        lambda: DHLIndex.build(graph.copy(), DHLConfig(seed=0)),
        rounds=2,
        iterations=1,
    )
