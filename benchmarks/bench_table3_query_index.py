"""Table 3: query time, labelling/shortcut sizes, construction time.

Paper shape to reproduce: DHL queries ~2-4x faster than IncH2H; DHL
labelling is a small fraction of IncH2H's (10-20% at paper scale);
shortcut storage ~3x smaller; construction faster.
"""

from __future__ import annotations

import pytest

from repro.baselines.inch2h import IncH2HIndex
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex


@pytest.mark.benchmark(group="table3-query")
@pytest.mark.parametrize("method", ["DHL", "IncH2H"])
def test_query_time(
    benchmark, method, dataset, dhl_indexes, inch2h_indexes, query_pairs
):
    index = (dhl_indexes if method == "DHL" else inch2h_indexes)[dataset]
    pairs = query_pairs[dataset]

    def run():
        distance = index.distance
        for s, t in pairs:
            distance(s, t)

    benchmark.extra_info["queries"] = len(pairs)
    # Size columns of Table 3, attached to the benchmark record:
    if method == "DHL":
        stats = index.stats()
        benchmark.extra_info["label_bytes"] = stats.label_bytes
        benchmark.extra_info["shortcut_bytes"] = stats.shortcut_bytes
        benchmark.extra_info["label_entries"] = stats.label_entries
        benchmark.extra_info["height"] = stats.height
    else:
        benchmark.extra_info["label_bytes"] = index.memory_bytes()
        benchmark.extra_info["shortcut_bytes"] = index.shortcut_bytes()
        benchmark.extra_info["label_entries"] = index.label_entries()
        benchmark.extra_info["height"] = index.height
    benchmark(run)


@pytest.mark.benchmark(group="table3-construction")
@pytest.mark.parametrize("method", ["DHL", "IncH2H"])
def test_construction_time(benchmark, method, dataset, graphs):
    graph = graphs[dataset]
    if method == "DHL":
        benchmark.pedantic(
            lambda: DHLIndex.build(graph.copy(), DHLConfig(seed=0)),
            rounds=2,
            iterations=1,
        )
    else:
        benchmark.pedantic(
            lambda: IncH2HIndex.build(graph.copy()), rounds=2, iterations=1
        )


@pytest.mark.benchmark(group="table3-affected-labels")
@pytest.mark.parametrize("method", ["DHL", "IncH2H"])
def test_affected_labels(
    benchmark, method, dataset, dhl_indexes, inch2h_indexes, update_batches
):
    """L-delta: distinct label entries changed by one doubled batch."""
    from repro.experiments.workloads import double_weights, restore_weights

    index = (dhl_indexes if method == "DHL" else inch2h_indexes)[dataset]
    batch = update_batches[dataset]
    inc, dec = double_weights(batch), restore_weights(batch)

    changed = []

    def run():
        stats = index.increase(inc)
        changed.append(stats.labels_changed)
        index.decrease(dec)

    benchmark(run)
    total = (
        index.stats().label_entries
        if method == "DHL"
        else index.label_entries()
    )
    benchmark.extra_info["labels_changed"] = changed[-1]
    benchmark.extra_info["label_entries"] = total
    benchmark.extra_info["fraction"] = round(changed[-1] / max(1, total), 4)
