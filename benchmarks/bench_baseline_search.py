"""Search baselines vs the indexes (the paper's Section 2 motivation).

Index-free methods need no construction or maintenance but "are very
inefficient in query processing" — this bench quantifies the gap between
Dijkstra / bidirectional Dijkstra / A* (Euclidean and ALT) and the
label-based indexes on the same pairs.
"""

from __future__ import annotations

import pytest

from repro.baselines.astar import ALTHeuristic, astar_distance
from repro.baselines.dijkstra import bidirectional_dijkstra, dijkstra_distance


@pytest.fixture(scope="module")
def alt_heuristics(graphs):
    return {name: ALTHeuristic(g, k=4, seed=0) for name, g in graphs.items()}


@pytest.mark.benchmark(group="search-baselines")
@pytest.mark.parametrize(
    "method", ["dijkstra", "bidirectional", "astar-euclid", "astar-alt", "dhl"]
)
def test_point_to_point(
    benchmark, method, dataset, graphs, dhl_indexes, alt_heuristics, query_pairs
):
    graph = graphs[dataset]
    pairs = query_pairs[dataset][:25]  # search methods are slow

    if method == "dijkstra":
        run = lambda: [dijkstra_distance(graph, s, t) for s, t in pairs]
    elif method == "bidirectional":
        run = lambda: [bidirectional_dijkstra(graph, s, t) for s, t in pairs]
    elif method == "astar-euclid":
        run = lambda: [astar_distance(graph, s, t) for s, t in pairs]
    elif method == "astar-alt":
        alt = alt_heuristics[dataset]
        run = lambda: [
            astar_distance(graph, s, t, heuristic=alt.heuristic(t))
            for s, t in pairs
        ]
    else:
        index = dhl_indexes[dataset]
        run = lambda: [index.distance(s, t) for s, t in pairs]

    benchmark.extra_info["pairs"] = len(pairs)
    benchmark(run)


@pytest.mark.benchmark(group="path-reconstruction")
def test_shortest_path_reconstruction(benchmark, dataset, dhl_indexes, query_pairs):
    """Route extraction on top of distance labels (library extension)."""
    index = dhl_indexes[dataset]
    pairs = [
        (s, t)
        for s, t in query_pairs[dataset][:25]
        if index.distance(s, t) != float("inf")
    ]
    benchmark(lambda: [index.shortest_path(s, t) for s, t in pairs])
