"""CI perf-regression gate over ``BENCH_service.json``.

Compares a fresh quick-mode run of ``bench_service_throughput.py``
against the committed baseline. Vectorised throughput metrics
(``*_qps`` except the pure-interpreter ``per_pair_qps``) may not fall
below ``baseline / tolerance`` — the tolerance is deliberately generous
(1.5x by default, ``REPRO_BENCH_TOLERANCE`` to override) because CI
runners are noisy; the gate exists to catch order-of-kernel regressions
(an accidental padded copy, a per-pair fallback), not single-digit
jitter.

Key sets are compared *symmetrically*: a metric present in only one of
the two documents fails with an explicit message naming the missing
side, so a schema change (adding the sharded metrics, renaming a
kernel) surfaces as "update the committed baseline" instead of a
KeyError or a silently skipped check.

Machine-independent ratio invariants are also enforced:

* the zero-copy kernel must at least match the padded-matrix reference;
* the batch kernel must stay well above the per-pair loop;
* the parallel k=4 sharded build must stay at least at parity with the
  monolithic build (slack for scheduler noise);
* cross-shard queries may cost at most ``MAX_CROSS_SHARD_SLOWDOWN``
  times the monolithic kernel on the same pairs;
* a single intra-region update batch must touch exactly one shard;
* the worker-pool runtime must hold batch throughput against the
  in-process sharded backend on the same pairs — at least parity on a
  multi-core runner (that is the point of the worker pool), and within
  ``MIN_WORKER_POOL_RATIO_SINGLE_CORE`` on a single-core runner, where
  only scheduling/IPC overhead is measurable (``meta.cpu_count`` in the
  current run decides which bound applies);
* a worker-pool maintenance flush must reach workers as shared-memory
  deltas: at least one delta sync, zero whole-buffer republishes;
* the socket-replica runtime must hold batch throughput against the
  in-process sharded backend on the same pairs (``REPRO_SOCKET_FLOOR``
  overrides; core-aware like the worker-pool gate), its failover drill
  must have counted at least one failover with updates riding inline
  deltas and zero republishes; its supervision drill must have
  respawned the killed replica (``socket_respawns``), and both
  recovery numbers stay under absolute ceilings —
  ``failover_recovery_ms`` (first post-kill batch,
  ``REPRO_FAILOVER_RECOVERY_CEILING_MS`` overrides) and
  ``respawn_downtime_ms`` (spawn + handshake,
  ``REPRO_RESPAWN_CEILING_MS`` overrides);
* the async frontend's concurrent burst must answer at least
  ``MIN_ASYNC_MICROBATCH_SPEEDUP`` times faster than the same burst
  awaited serially (the micro-batching win is the reason the frontend
  exists — a same-run ratio, machine independent), and its admission
  probe must have shed at least one request;
* the frontier-batched array maintenance engine must hold at least
  ``MIN_UPDATE_ENGINE_SPEEDUP`` times the scalar reference engine's
  batch-update throughput on the same machine (a same-run ratio, so it
  is machine independent), and the serving-layer flush latency may not
  regress past the committed baseline times the tolerance;
* when the current run was made with numba installed (the CI numba
  leg), the compiled engine must hold at least ``REPRO_COMPILED_FLOOR``
  (default 2x) the array engine on both the batch-update and the
  batch-query gather ratios (``update_compiled_over_array`` /
  ``query_compiled_over_array`` — same-run ratios, machine
  independent); runs without numba simply omit the keys and the gate
  prints a skip notice instead of failing, so the committed no-numba
  baseline stays valid on both CI legs;
* the observability layer's enabled-metrics replay may cost at most
  ``MAX_OBSERVABILITY_OVERHEAD`` times the default null-stack replay of
  the same query batches (a same-run ratio) — the null-object design's
  zero-overhead-by-default promise, gated
  (``REPRO_OBS_OVERHEAD_CEILING`` overrides while recalibrating).

Usage::

    python benchmarks/check_service_regression.py CURRENT BASELINE
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 1.5
# The zero-copy kernel must not fall below the padded reference; a hair
# of slack absorbs scheduler noise on shared CI runners.
MIN_ZERO_COPY_OVER_PADDED = 1.0
MIN_ZERO_COPY_OVER_PER_PAIR = 3.0
# The k=4 partition-parallel build beats the monolithic one comfortably
# (four small builds undercut one big build even serially); 0.8 leaves
# noise slack while still catching a sharded build-path regression.
MIN_SHARDED_BUILD_SPEEDUP = 0.8
# Cross-shard queries pay boundary fans plus the overlay combine — in
# practice ~3.5x the monolithic kernel on the same pairs. The bound is
# a same-machine ratio, so it is gated tightly enough to catch a lost
# fan dedup or an uncached overlay block (each worth >3x on its own).
MAX_CROSS_SHARD_SLOWDOWN = 10.0
# Worker-pool vs in-process sharded throughput on the same cross-region
# pairs. With >= MULTI_CORE_THRESHOLD cores the k worker processes
# genuinely overlap and must at least hold parity with the single GIL
# (0.9 leaves slack for runner noise; REPRO_WORKER_POOL_FLOOR overrides
# it while recalibrating). The parity floor only *arms* once the
# committed baseline itself was recorded on a multi-core machine —
# until then it has no validated reference and the gate applies the
# overhead floor with a printed recalibration notice instead of
# hard-failing on an untested branch. On a single core the worker
# processes timeshare and the ratio only measures scheduling overhead —
# in practice ~0.8, so 0.5 still catches a lost sub-batch aggregation
# or a per-group round-trip regression (each worth ~2x on its own).
# The array engine replaces per-entry heap pops with per-level numpy
# reductions; on the quick profile's batch sizes it measures ~5x the
# reference. 3x leaves runner-noise slack while still catching a lost
# vectorised path (falling back to scalar work is worth far more).
MIN_UPDATE_ENGINE_SPEEDUP = 3.0
# The numba engine replaces the numpy level sweeps with fused
# scalar-heap loops over the flat CSR buffers — no per-round array
# temporaries, no searchsorted passes. Only gated when the current run
# actually had numba (the CI compiled leg); a no-numba run omits the
# ratio keys entirely and the gate prints a skip notice instead.
MIN_COMPILED_SPEEDUP = float(os.environ.get("REPRO_COMPILED_FLOOR", 2.0))
# Enabled-registry replay over null-stack replay on identical batches.
# Per 512-pair batch the live stack adds a few counter increments and
# one histogram bisect against ~ms of kernel work, so the true ratio
# sits at ~1.0x; 1.05 catches an accidental hot-path allocation (a
# per-query trace object, an unconditional snapshot) without tripping
# on runner noise, since both sides are best-of-N minima from the same
# process.
MAX_OBSERVABILITY_OVERHEAD = float(
    os.environ.get("REPRO_OBS_OVERHEAD_CEILING", 1.05)
)
MULTI_CORE_THRESHOLD = 4
MIN_WORKER_POOL_RATIO_MULTI_CORE = float(
    os.environ.get("REPRO_WORKER_POOL_FLOOR", 0.9)
)
MIN_WORKER_POOL_RATIO_SINGLE_CORE = 0.5
# Socket replicas pay TCP framing + codec copies on top of the worker
# pool's scheduling, but amortise them over whole sub-batches: measured
# ~0.85x the in-process sharded kernel on the quick profile's 20k-pair
# batches on a multi-core machine. 0.5 catches a lost batch fold (per
# sub-query round trips are worth far more than 2x) without tripping on
# runner noise; on a single core the replicas timeshare behind the
# framing cost, so only a sanity floor applies.
MIN_SOCKET_RATIO_MULTI_CORE = float(os.environ.get("REPRO_SOCKET_FLOOR", 0.5))
MIN_SOCKET_RATIO_SINGLE_CORE = 0.1
# The async frontend's one justification: a concurrent burst of
# single-pair awaits folds into whole scheduler batches. Measured ~9x
# over the serial-await loop on the quick profile; 2.0 is the
# acceptance floor — below it the dispatcher is no longer folding
# (every await paying its own executor round trip reads as ~1x).
MIN_ASYNC_MICROBATCH_SPEEDUP = float(os.environ.get("REPRO_ASYNC_FLOOR", 2.0))
# The insert fast path extends the CSR slot store and runs one seeded
# decrease sweep; the fallback tier re-contracts H_U and relabels the
# whole index. On the quick profile the measured gap is well over an
# order of magnitude; 5x is the acceptance floor — below it the fast
# path has degenerated into (or is being bypassed for) a rebuild.
MIN_INSERT_FASTPATH_RATIO = float(os.environ.get("REPRO_FASTPATH_FLOOR", 5.0))
# Recovery ceilings for the socket-replica drills, milliseconds. Both
# are absolute wall-clock numbers (the failover is one batch paying the
# dead-connection discovery + retry; the respawn is one process spawn +
# spec handshake), so the ceilings are loose enough for a loaded CI
# runner but still catch a recovery path degenerating into a timeout
# wait (the 30s request deadline is two orders of magnitude above
# either ceiling). Override while recalibrating on a slow runner.
MAX_FAILOVER_RECOVERY_MS = float(
    os.environ.get("REPRO_FAILOVER_RECOVERY_CEILING_MS", 10_000.0)
)
MAX_RESPAWN_DOWNTIME_MS = float(
    os.environ.get("REPRO_RESPAWN_CEILING_MS", 10_000.0)
)


def _metrics(doc: dict, label: str) -> dict:
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(
            f"ERROR {label}: no 'metrics' object — not a quick-mode "
            "BENCH_service.json?"
        )
    return metrics


def _require(metrics: dict, key: str, failures: list[str]) -> float | None:
    value = metrics.get(key)
    if value is None:
        failures.append(
            f"{key}: missing from current run — bench and gate disagree on "
            "the metric schema"
        )
    return value


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    cur = _metrics(current, "current")
    base = _metrics(baseline, "baseline")

    cur_qps = {k for k in cur if k.endswith("_qps")}
    base_qps = {k for k in base if k.endswith("_qps")}
    for key in sorted(base_qps - cur_qps):
        failures.append(
            f"{key}: in baseline but missing from current run — the bench "
            "dropped a metric; update benchmarks/BENCH_service.json if "
            "intentional"
        )
    for key in sorted(cur_qps - base_qps):
        failures.append(
            f"{key}: in current run but missing from baseline — regenerate "
            "the committed benchmarks/BENCH_service.json to cover it"
        )

    for key in sorted(base_qps & cur_qps):
        # The scalar loop is pure interpreter work — the most
        # machine-sensitive number of the set and not a serving path.
        # Its regressions surface through zero_copy_over_per_pair below.
        if key == "per_pair_qps":
            continue
        reference = base[key]
        value = cur[key]
        floor = reference / tolerance
        if value < floor:
            failures.append(
                f"{key}: {value:,.0f} qps < floor {floor:,.0f} "
                f"(baseline {reference:,.0f} / tolerance {tolerance})"
            )

    ratio = _require(cur, "zero_copy_over_padded", failures)
    if ratio is not None and ratio < MIN_ZERO_COPY_OVER_PADDED:
        failures.append(
            f"zero_copy_over_padded: {ratio} < {MIN_ZERO_COPY_OVER_PADDED} "
            "(flat-store kernel slower than the padded-matrix reference)"
        )
    speedup = _require(cur, "zero_copy_over_per_pair", failures)
    if speedup is not None and speedup < MIN_ZERO_COPY_OVER_PER_PAIR:
        failures.append(
            f"zero_copy_over_per_pair: {speedup} < "
            f"{MIN_ZERO_COPY_OVER_PER_PAIR} "
            "(batch kernel barely beats the scalar loop)"
        )
    build_speedup = _require(cur, "sharded_build_speedup", failures)
    if build_speedup is not None and build_speedup < MIN_SHARDED_BUILD_SPEEDUP:
        failures.append(
            f"sharded_build_speedup: {build_speedup} < "
            f"{MIN_SHARDED_BUILD_SPEEDUP} "
            "(partition-parallel shard build no longer beats monolithic)"
        )
    slowdown = _require(cur, "cross_shard_slowdown", failures)
    if slowdown is not None and slowdown > MAX_CROSS_SHARD_SLOWDOWN:
        failures.append(
            f"cross_shard_slowdown: {slowdown} > {MAX_CROSS_SHARD_SLOWDOWN} "
            "(cross-shard routing overhead drifted too far from the "
            "monolithic kernel)"
        )
    touched = _require(cur, "update_touched_shards", failures)
    if touched is not None and touched != 1:
        failures.append(
            f"update_touched_shards: {touched} != 1 "
            "(an intra-region update leaked outside its owning shard)"
        )

    fastpath_ratio = _require(cur, "insert_fastpath_ratio", failures)
    if fastpath_ratio is not None and fastpath_ratio < MIN_INSERT_FASTPATH_RATIO:
        failures.append(
            f"insert_fastpath_ratio: {fastpath_ratio} < "
            f"{MIN_INSERT_FASTPATH_RATIO} "
            "(frontier-kernel insert fast path no longer beats the "
            "fallback rebuild tier)"
        )
    for key in ("structural_batch_pairs_per_s", "compaction_ms"):
        _require(cur, key, failures)

    engine_ratio = _require(cur, "update_array_over_reference", failures)
    if engine_ratio is not None and engine_ratio < MIN_UPDATE_ENGINE_SPEEDUP:
        failures.append(
            f"update_array_over_reference: {engine_ratio} < "
            f"{MIN_UPDATE_ENGINE_SPEEDUP} "
            "(array maintenance engine lost its batch-update advantage "
            "over the scalar reference)"
        )
    for key, what in (
        ("update_compiled_over_array", "batch-update"),
        ("query_compiled_over_array", "batch-query gather"),
    ):
        ratio = cur.get(key)
        if ratio is None:
            print(
                f"NOTE {key} absent from current run (numba not installed) "
                "— compiled-engine gate skipped"
            )
        elif ratio < MIN_COMPILED_SPEEDUP:
            failures.append(
                f"{key}: {ratio} < {MIN_COMPILED_SPEEDUP} "
                f"(the numba engine lost its {what} advantage over the "
                "numpy array engine; REPRO_COMPILED_FLOOR overrides while "
                "recalibrating)"
            )
    update_tp = _require(cur, "update_throughput_pairs_per_s", failures)
    base_update_tp = base.get("update_throughput_pairs_per_s")
    if update_tp is not None and base_update_tp is not None:
        floor = base_update_tp / tolerance
        if update_tp < floor:
            failures.append(
                f"update_throughput_pairs_per_s: {update_tp:,.0f} < floor "
                f"{floor:,.0f} (baseline {base_update_tp:,.0f} / "
                f"tolerance {tolerance})"
            )
    obs_ratio = _require(cur, "observability_overhead_ratio", failures)
    if obs_ratio is not None and obs_ratio > MAX_OBSERVABILITY_OVERHEAD:
        failures.append(
            f"observability_overhead_ratio: {obs_ratio} > "
            f"{MAX_OBSERVABILITY_OVERHEAD} "
            "(the enabled metrics stack drags the query hot path; the "
            "disabled default must stay zero-overhead)"
        )
    flush_ms = _require(cur, "flush_latency_ms", failures)
    base_flush_ms = base.get("flush_latency_ms")
    if flush_ms is not None and base_flush_ms is not None:
        ceiling = base_flush_ms * tolerance
        if flush_ms > ceiling:
            failures.append(
                f"flush_latency_ms: {flush_ms} > ceiling {ceiling:.3f} "
                f"(baseline {base_flush_ms} * tolerance {tolerance})"
            )

    cores = int(current.get("meta", {}).get("cpu_count") or 1)
    baseline_cores = int(baseline.get("meta", {}).get("cpu_count") or 1)
    pool_ratio = _require(cur, "worker_pool_over_inprocess", failures)
    multi_core = (
        cores >= MULTI_CORE_THRESHOLD and baseline_cores >= MULTI_CORE_THRESHOLD
    )
    pool_floor = (
        MIN_WORKER_POOL_RATIO_MULTI_CORE
        if multi_core
        else MIN_WORKER_POOL_RATIO_SINGLE_CORE
    )
    if cores >= MULTI_CORE_THRESHOLD and not multi_core:
        print(
            f"NOTE worker-pool parity floor not armed: this runner has "
            f"{cores} cores but the committed baseline was recorded on "
            f"{baseline_cores}; regenerate benchmarks/BENCH_service.json "
            "on a multi-core machine to arm the "
            f"{MIN_WORKER_POOL_RATIO_MULTI_CORE} parity gate "
            f"(measured worker_pool_over_inprocess: {pool_ratio})"
        )
    if pool_ratio is not None and pool_ratio < pool_floor:
        failures.append(
            f"worker_pool_over_inprocess: {pool_ratio} < {pool_floor} "
            f"on a {cores}-core runner (worker-pool batch scheduling "
            "lost too much to the in-process sharded backend)"
        )
    republishes = _require(cur, "worker_republishes", failures)
    if republishes is not None and republishes != 0:
        failures.append(
            f"worker_republishes: {republishes} != 0 "
            "(a maintenance flush re-copied whole label buffers instead "
            "of shipping shared-memory deltas)"
        )
    delta_syncs = _require(cur, "worker_delta_syncs", failures)
    if delta_syncs is not None and delta_syncs < 1:
        failures.append(
            f"worker_delta_syncs: {delta_syncs} < 1 "
            "(the maintenance probe never reached the workers)"
        )

    socket_qps = _require(cur, "socket_cross_qps", failures)
    sharded_qps = cur.get("sharded_cross_qps")
    if socket_qps is not None and sharded_qps:
        socket_ratio = socket_qps / sharded_qps
        socket_floor = (
            MIN_SOCKET_RATIO_MULTI_CORE
            if multi_core
            else MIN_SOCKET_RATIO_SINGLE_CORE
        )
        if socket_ratio < socket_floor:
            failures.append(
                f"socket_cross_qps/sharded_cross_qps: {socket_ratio:.3f} < "
                f"{socket_floor} on a {cores}-core runner (the TCP replica "
                "pool lost its batch fold — per-sub-query round trips?)"
            )
    socket_failovers = _require(cur, "socket_failovers", failures)
    if socket_failovers is not None and socket_failovers < 1:
        failures.append(
            f"socket_failovers: {socket_failovers} < 1 "
            "(the replica-kill drill never triggered a failover)"
        )
    socket_respawns = _require(cur, "socket_respawns", failures)
    if socket_respawns is not None and socket_respawns < 1:
        failures.append(
            f"socket_respawns: {socket_respawns} < 1 "
            "(the supervision poll never respawned the killed replica)"
        )
    recovery_ms = _require(cur, "failover_recovery_ms", failures)
    if recovery_ms is not None and recovery_ms > MAX_FAILOVER_RECOVERY_MS:
        failures.append(
            f"failover_recovery_ms: {recovery_ms} > "
            f"{MAX_FAILOVER_RECOVERY_MS} (the first post-kill batch stalled "
            "— failover is waiting on a timeout instead of failing fast; "
            "REPRO_FAILOVER_RECOVERY_CEILING_MS overrides)"
        )
    downtime_ms = _require(cur, "respawn_downtime_ms", failures)
    if downtime_ms is not None and downtime_ms > MAX_RESPAWN_DOWNTIME_MS:
        failures.append(
            f"respawn_downtime_ms: {downtime_ms} > {MAX_RESPAWN_DOWNTIME_MS} "
            "(a supervised respawn took too long to spawn and handshake; "
            "REPRO_RESPAWN_CEILING_MS overrides)"
        )
    socket_deltas = _require(cur, "socket_delta_syncs", failures)
    if socket_deltas is not None and socket_deltas < 1:
        failures.append(
            f"socket_delta_syncs: {socket_deltas} < 1 "
            "(the maintenance probe never reached the replicas inline)"
        )
    socket_repub = _require(cur, "socket_republishes", failures)
    if socket_repub is not None and socket_repub != 0:
        failures.append(
            f"socket_republishes: {socket_repub} != 0 "
            "(a maintenance flush re-shipped whole label buffers to the "
            "replicas instead of an inline delta)"
        )

    async_speedup = _require(cur, "async_microbatch_over_serial", failures)
    if async_speedup is not None and async_speedup < MIN_ASYNC_MICROBATCH_SPEEDUP:
        failures.append(
            f"async_microbatch_over_serial: {async_speedup} < "
            f"{MIN_ASYNC_MICROBATCH_SPEEDUP} "
            "(the async dispatcher stopped folding concurrent awaits into "
            "scheduler batches)"
        )
    shed = _require(cur, "async_shed_count", failures)
    if shed is not None and shed < 1:
        failures.append(
            f"async_shed_count: {shed} < 1 "
            "(admission control admitted an unbounded backlog)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="fresh BENCH_service.json")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(current, baseline, args.tolerance)

    print(f"baseline : {baseline.get('metrics')}")
    print(f"current  : {current.get('metrics')}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"OK — within {args.tolerance}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
