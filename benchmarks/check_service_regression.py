"""CI perf-regression gate over ``BENCH_service.json``.

Compares a fresh quick-mode run of ``bench_service_throughput.py``
against the committed baseline. Vectorised throughput metrics
(``*_qps`` except the pure-interpreter ``per_pair_qps``) may not fall
below ``baseline / tolerance`` — the tolerance is deliberately generous
(1.5x by default, ``REPRO_BENCH_TOLERANCE`` to override) because CI
runners are noisy; the gate exists to catch order-of-kernel regressions
(an accidental padded copy, a per-pair fallback), not single-digit
jitter.

Two ratio invariants are also enforced, because they are
machine-independent:

* the zero-copy kernel must at least match the padded-matrix reference;
* the batch kernel must stay well above the per-pair loop.

Usage::

    python benchmarks/check_service_regression.py CURRENT BASELINE
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 1.5
# The zero-copy kernel must not fall below the padded reference; a hair
# of slack absorbs scheduler noise on shared CI runners.
MIN_ZERO_COPY_OVER_PADDED = 1.0
MIN_ZERO_COPY_OVER_PER_PAIR = 3.0


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    cur = current["metrics"]
    base = baseline["metrics"]
    for key, reference in base.items():
        if not key.endswith("_qps"):
            continue
        # The scalar loop is pure interpreter work — the most
        # machine-sensitive number of the set and not a serving path.
        # Its regressions surface through zero_copy_over_per_pair below.
        if key == "per_pair_qps":
            continue
        value = cur.get(key)
        if value is None:
            failures.append(f"{key}: missing from current run")
            continue
        floor = reference / tolerance
        if value < floor:
            failures.append(
                f"{key}: {value:,.0f} qps < floor {floor:,.0f} "
                f"(baseline {reference:,.0f} / tolerance {tolerance})"
            )
    ratio = cur.get("zero_copy_over_padded", 0.0)
    if ratio < MIN_ZERO_COPY_OVER_PADDED:
        failures.append(
            f"zero_copy_over_padded: {ratio} < {MIN_ZERO_COPY_OVER_PADDED} "
            "(flat-store kernel slower than the padded-matrix reference)"
        )
    speedup = cur.get("zero_copy_over_per_pair", 0.0)
    if speedup < MIN_ZERO_COPY_OVER_PER_PAIR:
        failures.append(
            f"zero_copy_over_per_pair: {speedup} < {MIN_ZERO_COPY_OVER_PER_PAIR} "
            "(batch kernel barely beats the scalar loop)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="fresh BENCH_service.json")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(current, baseline, args.tolerance)

    print(f"baseline : {baseline['metrics']}")
    print(f"current  : {current['metrics']}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"OK — within {args.tolerance}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
